//! The POP scheduling policy (§3, §5.3).
//!
//! At every evaluation boundary `b` of a job, POP:
//!
//! 1. applies the model-owner **kill threshold** (§2.1): a job still at or
//!    below known non-learning performance after a warmup number of
//!    evaluations is Poor and terminated;
//! 2. fits the probabilistic learning-curve model and computes the job's
//!    expected remaining time and **prediction confidence** `p` (§3.1.1);
//! 3. terminates jobs whose confidence falls below the lower bound
//!    (§5.3: "if it is less than 0.05 we terminate it");
//! 4. recomputes the **dynamic threshold** `p*` and promising-slot count
//!    from the confidences of all active jobs (§3.2), labels every active
//!    job with its priority, and classifies the current job;
//! 5. **Promising** jobs keep their machine; **Opportunistic** jobs are
//!    suspended at the boundary when other work is waiting ("if the job is
//!    opportunistic we suspend it and start a new job"), implementing
//!    round-robin sharing of the opportunistic pool.

use std::collections::HashMap;

use hyperdrive_curve::{FitRequest, FitService, PredictorConfig};
use hyperdrive_framework::{
    JobDecision, JobEvent, PrefetchHint, SchedulerContext, SchedulingPolicy,
};
use hyperdrive_types::{JobId, LearningCurve, SimTime};

use crate::allocation::{allocate_slots, AllocationPoint};
use crate::ert::estimate_remaining_time;

/// How POP applies the §2.1 early-kill domain knowledge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KillRule {
    /// Use the workload's [`hyperdrive_types::DomainKnowledge`] threshold
    /// and warmup.
    DomainDefault,
    /// Use an explicit threshold/warmup pair.
    Custom {
        /// Normalized performance at or below which a job is Poor.
        threshold: f64,
        /// Evaluation boundaries to wait before applying the threshold.
        warmup_evals: u32,
    },
    /// Never kill on the threshold (ablation).
    Disabled,
}

/// Deterministic virtual-time model of curve-fitting overhead.
///
/// The simulator has no business measuring wall-clock — that would make
/// virtual timelines depend on host load and physical worker count. This
/// model instead prices each fit from its likelihood-evaluation count and
/// schedules the batch onto `modeled_workers` *virtual* workers (greedy
/// least-loaded assignment, in request order), charging the resulting
/// makespan to the decision. `modeled_workers` is a model parameter,
/// deliberately decoupled from the physical `fit_threads` pool size, so
/// results stay byte-identical across physical thread counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitCostModel {
    /// Modeled seconds per 1000 ensemble likelihood evaluations.
    pub secs_per_kiloeval: f64,
    /// Virtual worker count the batch is scheduled onto.
    pub modeled_workers: usize,
    /// Modeled throughput multiplier applied when the priced
    /// [`PredictorConfig`] has `fast_math` enabled (the batched-kernel
    /// likelihood path). `1.0` prices fast-math fits the same as libm
    /// fits; the `fit_simd` bench measures the real ratio (its JSON
    /// reports the measured cold speedup). Must be positive.
    pub fast_math_speedup: f64,
    /// Modeled throughput multiplier applied on top of
    /// `fast_math_speedup` when the priced [`PredictorConfig`] also has
    /// `batch_fit` enabled (cold boundary fits fused across curves in one
    /// lockstep sweep). `1.0` prices batched fits like per-curve ones;
    /// the `batch_fit` bench measures the real ratio. Must be positive.
    pub batch_fit_speedup: f64,
}

impl FitCostModel {
    /// The per-kiloeval price adjusted for `config`'s likelihood path.
    fn kiloeval_price(&self, config: &PredictorConfig) -> f64 {
        let mut price = self.secs_per_kiloeval;
        if config.fast_math {
            price /= self.fast_math_speedup;
            // Batching only applies on top of the fast-math path — the
            // service never batches libm fits.
            if config.batch_fit {
                price /= self.batch_fit_speedup;
            }
        }
        price
    }

    /// Modeled cost (seconds) of one fit at `config` fidelity over
    /// `n_obs` observations.
    #[must_use]
    pub fn fit_secs(&self, config: &PredictorConfig, n_obs: usize) -> f64 {
        let evals = config.walkers * config.steps * n_obs.clamp(1, config.max_obs);
        evals as f64 / 1000.0 * self.kiloeval_price(config)
    }

    /// Modeled cost (seconds) of one **warm-started** fit: same
    /// per-kiloeval price, but the sampler runs the shorter `warm_steps`
    /// schedule, so warm refits are proportionally cheaper.
    #[must_use]
    pub fn warm_fit_secs(&self, config: &PredictorConfig, n_obs: usize) -> f64 {
        let evals = config.walkers * config.warm_steps * n_obs.clamp(1, config.max_obs);
        evals as f64 / 1000.0 * self.kiloeval_price(config)
    }

    /// Makespan of scheduling `costs` (in request order) onto the modeled
    /// workers: each fit goes to the least-loaded worker, and the batch
    /// takes as long as the busiest worker. With one modeled worker this
    /// degenerates to the serial sum.
    #[must_use]
    pub fn makespan_secs(&self, costs: &[f64]) -> f64 {
        let workers = self.modeled_workers.max(1);
        let mut load = vec![0.0f64; workers];
        for c in costs {
            let min = load
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("loads are finite"))
                .map(|(i, _)| i)
                .expect("at least one worker");
            load[min] += c;
        }
        load.into_iter().fold(0.0, f64::max)
    }
}

/// Configuration for [`PopPolicy`].
#[derive(Debug, Clone, Copy)]
pub struct PopConfig {
    /// Curve-model fidelity.
    pub predictor: PredictorConfig,
    /// Dedicated slots per promising configuration (`k`; 1 for sequential
    /// training).
    pub k: usize,
    /// Confidence lower bound below which a job is terminated (§5.3:
    /// 0.05).
    pub lower_bound_confidence: f64,
    /// Early-kill rule.
    pub kill_rule: KillRule,
    /// Evaluation boundary override; `None` uses the workload's `b`.
    pub boundary: Option<u32>,
    /// Ablation: replace the dynamic `p*` with a static threshold
    /// (§2.2c's strawman).
    pub static_threshold: Option<f64>,
    /// Physical worker threads for the parallel fit service (0 =
    /// `HYPERDRIVE_FIT_THREADS`, falling back to one per core). Results
    /// are byte-identical whatever this is set to; it only changes how
    /// fast they arrive.
    pub fit_threads: usize,
    /// Optional virtual-time accounting of prediction overhead: when set,
    /// each boundary decision reports the modeled makespan of its fit
    /// batch, which the engine charges to the decided job.
    pub fit_cost: Option<FitCostModel>,
    /// Speculative ahead-of-boundary fit prefetch: the engine hints each
    /// boundary epoch at *issue* time and the fit service computes the
    /// boundary fit while the epoch runs, so the decision collects an
    /// already-finished posterior instead of launching it synchronously.
    /// Prefetch changes *when* fits compute, never *what* they compute —
    /// traces stay byte-identical (see `FitService::prefetch_fit`).
    /// `None` defers to the `HYPERDRIVE_FIT_PREFETCH` environment knob
    /// (default off); `Some` overrides it either way.
    pub fit_prefetch: Option<bool>,
    /// Base seed for prediction determinism.
    pub seed: u64,
}

impl Default for PopConfig {
    fn default() -> Self {
        PopConfig {
            predictor: PredictorConfig::fast(),
            k: 1,
            lower_bound_confidence: 0.05,
            kill_rule: KillRule::DomainDefault,
            boundary: None,
            static_threshold: None,
            fit_threads: 0,
            fit_cost: None,
            fit_prefetch: None,
            seed: 0,
        }
    }
}

/// POP's latest assessment of one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobAssessment {
    /// Prediction confidence `p`.
    pub confidence: f64,
    /// Expected remaining time to target.
    pub ert: SimTime,
    /// Epoch at which the assessment was made.
    pub epoch: u32,
}

/// One recorded allocation decision, for the Fig. 4 reproduction.
#[derive(Debug, Clone)]
pub struct AllocationSnapshot {
    /// When the decision was taken.
    pub now: SimTime,
    /// Active (non-terminated) jobs at the time.
    pub active_jobs: usize,
    /// Jobs classified promising.
    pub promising_jobs: usize,
    /// Jobs currently occupying machines.
    pub running_jobs: usize,
    /// Of the running jobs, how many are classified promising — the
    /// numerator of Fig. 4c's "ratio of promising slots".
    pub promising_running: usize,
    /// The dynamic threshold `p*` in force.
    pub p_threshold: f64,
    /// Slots granted to the promising pool.
    pub promising_slots: usize,
    /// The full desired/deserved curve.
    pub curve: Vec<AllocationPoint>,
}

/// The POP scheduling policy.
#[derive(Debug)]
pub struct PopPolicy {
    config: PopConfig,
    assessments: HashMap<JobId, JobAssessment>,
    timeline: Vec<AllocationSnapshot>,
    /// The deterministic parallel fit pool; all curve predictions flow
    /// through it so unchanged prefixes are never re-fit.
    service: FitService,
    /// Modeled prediction overhead accrued since the engine last drained
    /// it via `take_decision_overhead` (zero unless `fit_cost` is set).
    pending_overhead: SimTime,
    /// Step-4 ranking scratch, reused across boundary decisions: one pass
    /// over the active jobs fills `confidences` (for `allocate_slots`) and
    /// `ranked` together, and the promising set is rebuilt in place — so
    /// boundary classification allocates nothing once the vectors have
    /// warmed to the active-job count.
    confidences: Vec<f64>,
    ranked: Vec<(JobId, f64)>,
    promising: Vec<JobId>,
}

impl PopPolicy {
    /// Creates POP with default (paper §5.3) parameters and fast predictor
    /// fidelity.
    pub fn new() -> Self {
        Self::with_config(PopConfig::default())
    }

    /// Creates POP with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or the lower bound is outside `[0, 1]`.
    pub fn with_config(config: PopConfig) -> Self {
        let service = FitService::new(config.predictor, config.seed, config.fit_threads);
        Self::with_service(config, service)
    }

    /// [`PopPolicy::with_config`] with an explicit shared
    /// content-addressed fit cache (`None` = never share fits across
    /// runs, whatever the environment says). `PopConfig` stays `Copy`, so
    /// the handle is a separate argument rather than a field; the default
    /// constructor resolves the process-global cache instead.
    ///
    /// # Panics
    ///
    /// As [`PopPolicy::with_config`].
    pub fn with_config_and_cache(
        config: PopConfig,
        cache: Option<std::sync::Arc<hyperdrive_curve::SharedFitCache>>,
    ) -> Self {
        let service =
            FitService::with_shared_cache(config.predictor, config.seed, config.fit_threads, cache);
        Self::with_service(config, service)
    }

    /// [`PopPolicy::with_config`] fitting through an **existing**
    /// [`FitPool`](hyperdrive_curve::FitPool) instead of spawning one:
    /// `config.fit_threads` is ignored and the pool's width applies. This
    /// is the multi-tenant server's constructor — every study's policy
    /// binds to one process-global pool (and optionally one shared
    /// content-addressed cache), and because per-fit seeds derive from
    /// `config.seed` alone, the resulting traces are byte-identical to
    /// [`PopPolicy::with_config`] at any pool width.
    ///
    /// # Panics
    ///
    /// As [`PopPolicy::with_config`].
    pub fn with_config_pooled(
        config: PopConfig,
        pool: std::sync::Arc<hyperdrive_curve::FitPool>,
        cache: Option<std::sync::Arc<hyperdrive_curve::SharedFitCache>>,
    ) -> Self {
        let service = FitService::with_pool(config.predictor, config.seed, pool, cache);
        Self::with_service(config, service)
    }

    fn with_service(config: PopConfig, service: FitService) -> Self {
        assert!(config.k > 0, "k must be positive");
        assert!(
            (0.0..=1.0).contains(&config.lower_bound_confidence),
            "lower bound must be a probability"
        );
        PopPolicy {
            config,
            assessments: HashMap::new(),
            timeline: Vec::new(),
            service,
            pending_overhead: SimTime::ZERO,
            confidences: Vec::new(),
            ranked: Vec::new(),
            promising: Vec::new(),
        }
    }

    /// The allocation decisions recorded so far (Fig. 4 instrumentation).
    pub fn timeline(&self) -> &[AllocationSnapshot] {
        &self.timeline
    }

    /// Number of curve-model predictions produced (diagnostic; §5.2
    /// overhead accounting): executed fits plus requests the shared
    /// content-addressed layer answered in a fit's stead. Per-run cache
    /// hits are not predictions. The sum is invariant between a cold run
    /// and the same run replayed against a warmed shared cache.
    pub fn predictions_made(&self) -> u64 {
        let s = self.service.stats();
        s.fits + s.shared_hits
    }

    /// Cumulative fit-service counters (fits, cache hits, batches).
    pub fn fit_stats(&self) -> hyperdrive_curve::FitStats {
        self.service.stats()
    }

    /// This policy's per-study view of the shared content-addressed fit
    /// cache (lookups, hits, inserts); all zero when no layer is attached.
    pub fn shared_cache_snapshot(&self) -> hyperdrive_curve::CacheStatsSnapshot {
        self.service.shared_snapshot()
    }

    /// Speculation counters (speculated / adopted / cancelled /
    /// mismatched); all zero unless fit prefetch is enabled.
    pub fn spec_stats(&self) -> hyperdrive_curve::SpecStats {
        self.service.spec_stats()
    }

    /// Worker-pool occupancy and boundary-stall telemetry from this
    /// policy's fit service.
    pub fn pool_stats(&self) -> hyperdrive_curve::FitPoolStats {
        self.service.pool_stats()
    }

    /// Whether this policy speculates ahead of boundaries: the explicit
    /// config override when present, else the `HYPERDRIVE_FIT_PREFETCH`
    /// environment knob (default off).
    fn prefetch_enabled(&self) -> bool {
        self.config.fit_prefetch.unwrap_or_else(hyperdrive_curve::fit_prefetch_forced)
    }

    /// An order-independent digest over every posterior this policy has
    /// memoized: two runs of the same experiment produced byte-identical
    /// posteriors iff their digests match (the server's equivalence tests
    /// compare this alongside the event trace).
    pub fn posterior_digest(&self) -> u64 {
        self.service.posterior_digest()
    }

    /// POP's latest assessment of a job, if it has one.
    pub fn assessment(&self, job: JobId) -> Option<&JobAssessment> {
        self.assessments.get(&job)
    }

    /// Drops all state for a terminated job.
    fn forget(&mut self, job: JobId) {
        self.assessments.remove(&job);
        self.service.forget(job);
    }

    /// Refreshes assessments for every active job whose fit point advanced,
    /// fitting all stale curve prefixes as one parallel batch. The event
    /// job's fit point is its just-finished epoch; other jobs are fitted at
    /// their most recent evaluation boundary, so between boundaries their
    /// `(config, epochs)` entry is a cache hit and nothing re-fits.
    fn refresh_assessments(&mut self, event: &JobEvent, b: u32, ctx: &mut dyn SchedulerContext) {
        let budget = ctx.tmax().saturating_sub(event.now);
        if budget <= SimTime::ZERO {
            return; // Tmax imminent; the engine stops anyway.
        }
        let max_epochs = ctx.max_epochs();
        let target = ctx.target();

        struct Meta {
            job: JobId,
            fit_epoch: u32,
            max_future: u32,
            epoch_duration: SimTime,
        }
        let mut requests: Vec<FitRequest> = Vec::new();
        let mut meta: Vec<Meta> = Vec::new();
        for (job, curve) in ctx.active_curves() {
            let Some(last_epoch) = curve.last_epoch() else { continue };
            // Fit points sit on evaluation boundaries; the reporting job is
            // exactly at one (the caller checked).
            let fit_epoch =
                if job == event.job { event.epoch } else { last_epoch - last_epoch % b };
            if fit_epoch == 0 {
                continue;
            }
            if self.assessments.get(&job).is_some_and(|a| a.epoch >= fit_epoch) {
                continue; // prefix unchanged since the last assessment
            }
            let prefix = if fit_epoch == last_epoch { curve } else { curve.prefix(fit_epoch) };
            let epoch_duration = prefix.mean_epoch_duration().unwrap_or_else(|| {
                SimTime::from_secs(event.now.as_secs() / f64::from(fit_epoch.max(1)))
            });
            if epoch_duration <= SimTime::ZERO {
                continue;
            }
            let m_budget = (budget.as_secs() / epoch_duration.as_secs()).floor() as u32;
            let max_future = m_budget.min(max_epochs.saturating_sub(fit_epoch));
            if max_future < 1 {
                continue;
            }
            requests.push(FitRequest { job, curve: prefix, horizon: fit_epoch + max_future });
            meta.push(Meta { job, fit_epoch, max_future, epoch_duration });
        }
        if requests.is_empty() {
            return;
        }

        let outcomes = self.service.fit_batch(&requests);

        // Virtual-time accounting: price the batch's *fresh* fits and
        // charge their modeled parallel makespan to this decision.
        if let Some(model) = &self.config.fit_cost {
            let costs: Vec<f64> = requests
                .iter()
                .zip(&outcomes)
                .filter(|(_, o)| !o.cached)
                .map(|(r, o)| {
                    let warm = o.result.as_ref().map(|p| p.warm_started()).unwrap_or(false);
                    if warm {
                        model.warm_fit_secs(&self.config.predictor, r.curve.len())
                    } else {
                        model.fit_secs(&self.config.predictor, r.curve.len())
                    }
                })
                .collect();
            self.pending_overhead += SimTime::from_secs(model.makespan_secs(&costs));
        }

        for (m, outcome) in meta.iter().zip(&outcomes) {
            if let Ok(posterior) = &outcome.result {
                let est = estimate_remaining_time(
                    posterior,
                    target,
                    m.max_future,
                    m.epoch_duration,
                    budget,
                );
                self.assessments.insert(
                    m.job,
                    JobAssessment { confidence: est.confidence, ert: est.ert, epoch: m.fit_epoch },
                );
            }
        }
    }

    fn kill_params(&self, ctx: &dyn SchedulerContext) -> Option<(f64, u32)> {
        match self.config.kill_rule {
            KillRule::DomainDefault => {
                let dk = ctx.domain();
                Some((dk.kill_threshold, dk.kill_warmup_evals))
            }
            KillRule::Custom { threshold, warmup_evals } => Some((threshold, warmup_evals)),
            KillRule::Disabled => None,
        }
    }
}

impl Default for PopPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulingPolicy for PopPolicy {
    fn name(&self) -> &str {
        "pop"
    }

    fn fit_cache_snapshot(&self) -> Option<hyperdrive_framework::FitCacheSnapshot> {
        let s = self.service.stats();
        Some(hyperdrive_framework::FitCacheSnapshot {
            fits: s.fits,
            local_hits: s.cache_hits,
            shared_hits: s.shared_hits,
            batches: s.batches,
            shared_lookups: s.shared_lookups,
            shared_inserts: s.shared_inserts,
        })
    }

    fn take_decision_overhead(&mut self) -> SimTime {
        std::mem::replace(&mut self.pending_overhead, SimTime::ZERO)
    }

    fn prefetch_boundary(&self, default_boundary: u32) -> Option<u32> {
        self.prefetch_enabled().then(|| self.config.boundary.unwrap_or(default_boundary).max(1))
    }

    fn prefetch_hint(&mut self, hint: &PrefetchHint, curve: &LearningCurve) {
        // Mirror of `refresh_assessments` for the hinted job, evaluated on
        // the curve as it will look when the in-flight epoch lands — same
        // budget arithmetic, same fallback epoch duration, same horizon —
        // so the speculative fit's fingerprint matches the boundary's
        // demand fit exactly and is adopted rather than recomputed.
        let budget = hint.tmax.saturating_sub(hint.completion_time);
        if budget <= SimTime::ZERO {
            return; // Tmax imminent; the boundary never fits either.
        }
        if hint.epoch == 0 || curve.last_epoch() != Some(hint.epoch - 1) {
            return; // curve out of step with the hint (rollback mid-turn)
        }
        let mut predicted = curve.clone();
        predicted.push(hint.epoch, hint.completion_time, hint.value);
        let epoch_duration = predicted.mean_epoch_duration().unwrap_or_else(|| {
            SimTime::from_secs(hint.completion_time.as_secs() / f64::from(hint.epoch.max(1)))
        });
        if epoch_duration <= SimTime::ZERO {
            return;
        }
        let m_budget = (budget.as_secs() / epoch_duration.as_secs()).floor() as u32;
        let max_future = m_budget.min(hint.max_epochs.saturating_sub(hint.epoch));
        if max_future < 1 {
            return;
        }
        self.service.prefetch_fit(hint.job, &predicted, hint.epoch + max_future);
    }

    fn on_iteration_finish(
        &mut self,
        event: &JobEvent,
        ctx: &mut dyn SchedulerContext,
    ) -> JobDecision {
        let b = self.config.boundary.unwrap_or_else(|| ctx.eval_boundary()).max(1);
        if !event.epoch.is_multiple_of(b) {
            return JobDecision::Continue;
        }
        let evals = event.epoch / b;
        let Some(curve) = ctx.curve(event.job) else {
            return JobDecision::Continue;
        };

        // Step 1: domain-knowledge kill threshold (Poor, not learning).
        if let Some((threshold, warmup)) = self.kill_params(ctx) {
            if evals >= warmup && curve.best().is_some_and(|best| best <= threshold) {
                self.forget(event.job);
                return JobDecision::Terminate;
            }
        }

        // Step 2: probabilistic assessment — one parallel fit batch
        // refreshing every active job whose curve prefix grew past a
        // boundary, the reporting job included.
        self.refresh_assessments(event, b, ctx);

        // Step 3: prune jobs unlikely to ever reach the target.
        if let Some(a) = self.assessments.get(&event.job) {
            if a.epoch == event.epoch
                && a.confidence < self.config.lower_bound_confidence
                && evals >= 2
            {
                self.forget(event.job);
                return JobDecision::Terminate;
            }
        }

        // Step 4: dynamic classification across all active jobs. One pass
        // fills the confidence column (for `allocate_slots`) and the
        // ranking scratch together, so confidences are never re-collected.
        let active = ctx.active_jobs();
        let n_active = active.len();
        self.confidences.clear();
        self.ranked.clear();
        for &j in active {
            let c = self.assessments.get(&j).map_or(0.0, |a| a.confidence);
            self.confidences.push(c);
            self.ranked.push((j, c));
        }
        let alloc = allocate_slots(&self.confidences, ctx.total_slots(), self.config.k);
        let (p_threshold, promising_cap) = match self.config.static_threshold {
            Some(t) => (t, ctx.total_slots()),
            None => (alloc.p_threshold, alloc.promising_slots),
        };

        // Rank active jobs by confidence and take the top `promising_cap`
        // among those meeting the threshold. The comparator is a total
        // order (unique job-id tiebreak), so the unstable sort yields
        // exactly the stable sort's result without its temporary buffer.
        self.ranked.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1).expect("confidences are probabilities").then(a.0.cmp(&b.0))
        });
        self.promising.clear();
        self.promising.extend(
            self.ranked
                .iter()
                .filter(|(_, c)| *c >= p_threshold)
                .take(promising_cap)
                .map(|(j, _)| *j),
        );

        // Step 5: priority labels — promising jobs carry their confidence,
        // opportunistic jobs share priority zero (round-robin FIFO).
        for (job, confidence) in &self.ranked {
            let priority = if self.promising.contains(job) { *confidence } else { 0.0 };
            ctx.label_job(*job, priority);
        }

        let running = ctx.running_jobs();
        let promising_running = running.iter().filter(|j| self.promising.contains(j)).count();
        let running_jobs = running.len();
        self.timeline.push(AllocationSnapshot {
            now: event.now,
            active_jobs: n_active,
            promising_jobs: self.promising.len(),
            running_jobs,
            promising_running,
            p_threshold,
            promising_slots: promising_cap.min(self.promising.len()),
            curve: alloc.curve,
        });

        if self.promising.contains(&event.job) {
            JobDecision::Continue
        } else if ctx.idle_job_count() > 0 {
            // Opportunistic: yield the machine to the next waiting job.
            JobDecision::Suspend
        } else {
            // Nobody is waiting; suspension would only waste snapshot cost.
            JobDecision::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperdrive_framework::testing::MockContext;

    fn event(job: u64, epoch: u32, value: f64) -> JobEvent {
        JobEvent { job: JobId::new(job), epoch, value, now: SimTime::from_mins(f64::from(epoch)) }
    }

    fn pop() -> PopPolicy {
        PopPolicy::with_config(PopConfig {
            predictor: PredictorConfig::test(),
            ..Default::default()
        })
    }

    /// Saturating curve rising from 0.1 toward `limit`.
    fn saturating(limit: f64, n: usize) -> Vec<f64> {
        (1..=n).map(|x| limit - (limit - 0.1) * (x as f64).powf(-0.8)).collect()
    }

    #[test]
    fn ignores_non_boundary_epochs() {
        let mut ctx = MockContext::new(4);
        let mut policy = pop();
        for epoch in [1, 9, 11, 15, 21] {
            assert_eq!(
                policy.on_iteration_finish(&event(0, epoch, 0.1), &mut ctx),
                JobDecision::Continue
            );
        }
        assert_eq!(policy.predictions_made(), 0);
    }

    #[test]
    fn kill_threshold_terminates_non_learners() {
        // Disable the confidence prune so the test isolates the §2.1 kill
        // threshold (CIFAR-10 knowledge: kill at <= 0.15 after 3 evals).
        let make_policy = || {
            PopPolicy::with_config(PopConfig {
                predictor: PredictorConfig::test(),
                lower_bound_confidence: 0.0,
                ..Default::default()
            })
        };
        let mut ctx = MockContext::new(4);
        ctx.push_curve(JobId::new(0), &vec![0.10; 30], 60.0);
        ctx.active = vec![JobId::new(0)];
        let mut policy = make_policy();
        assert_eq!(
            policy.on_iteration_finish(&event(0, 20, 0.1), &mut ctx),
            JobDecision::Continue,
            "within warmup (2 evals < 3)"
        );
        assert_eq!(
            policy.on_iteration_finish(&event(0, 30, 0.1), &mut ctx),
            JobDecision::Terminate,
            "past warmup and below kill threshold"
        );
    }

    #[test]
    fn confidence_prune_also_catches_flat_curves() {
        // With the default lower bound, a flat 10% curve dies at the second
        // boundary via p < 0.05 — even before the kill-threshold warmup.
        let mut ctx = MockContext::new(4);
        ctx.push_curve(JobId::new(0), &[0.10; 20], 60.0);
        ctx.active = vec![JobId::new(0)];
        let mut policy = pop();
        assert_eq!(
            policy.on_iteration_finish(&event(0, 20, 0.1), &mut ctx),
            JobDecision::Terminate
        );
    }

    #[test]
    fn kill_rule_can_be_disabled() {
        let mut ctx = MockContext::new(4);
        ctx.push_curve(JobId::new(0), &vec![0.10; 30], 60.0);
        ctx.active = vec![JobId::new(0)];
        let mut policy = PopPolicy::with_config(PopConfig {
            predictor: PredictorConfig::test(),
            kill_rule: KillRule::Disabled,
            lower_bound_confidence: 0.0, // isolate the kill-rule effect
            ..Default::default()
        });
        assert_eq!(policy.on_iteration_finish(&event(0, 30, 0.1), &mut ctx), JobDecision::Continue);
    }

    #[test]
    fn low_confidence_job_is_pruned() {
        let mut ctx = MockContext::new(4);
        // Learning (escapes the kill threshold) but saturating far below
        // the 0.77 target.
        ctx.push_curve(JobId::new(0), &saturating(0.30, 30), 60.0);
        ctx.active = vec![JobId::new(0)];
        let mut policy = pop();
        assert_eq!(
            policy.on_iteration_finish(&event(0, 30, 0.29), &mut ctx),
            JobDecision::Terminate,
            "p < 0.05 prune"
        );
        assert!(policy.predictions_made() > 0);
    }

    #[test]
    fn promising_job_continues_and_is_labelled() {
        let mut ctx = MockContext::new(4);
        ctx.push_curve(JobId::new(0), &saturating(0.85, 30), 60.0);
        ctx.active = vec![JobId::new(0)];
        ctx.idle_jobs = vec![JobId::new(1)];
        let mut policy = pop();
        let decision = policy.on_iteration_finish(&event(0, 30, 0.8), &mut ctx);
        assert_eq!(decision, JobDecision::Continue);
        let a = policy.assessment(JobId::new(0)).expect("assessed");
        assert!(a.confidence > 0.5, "confidence {}", a.confidence);
        let label = ctx.labels.iter().find(|(j, _)| *j == JobId::new(0)).expect("labelled");
        assert!(label.1 > 0.0, "promising jobs carry their confidence as priority");
    }

    #[test]
    fn opportunistic_job_suspends_only_when_work_waits() {
        // Pin the threshold above any achievable confidence so the strong
        // job is classified opportunistic, isolating the suspend decision.
        let setup = |idle: Vec<JobId>| -> (MockContext, PopPolicy) {
            let mut ctx = MockContext::new(2);
            ctx.push_curve(JobId::new(0), &saturating(0.85, 30), 60.0);
            ctx.active = vec![JobId::new(0)];
            ctx.idle_jobs = idle;
            let policy = PopPolicy::with_config(PopConfig {
                predictor: PredictorConfig::test(),
                static_threshold: Some(1.5),
                ..Default::default()
            });
            (ctx, policy)
        };
        let (mut ctx, mut policy) = setup(vec![JobId::new(3)]);
        assert_eq!(
            policy.on_iteration_finish(&event(0, 30, 0.8), &mut ctx),
            JobDecision::Suspend,
            "opportunistic with waiting work"
        );
        let (mut ctx2, mut policy2) = setup(Vec::new());
        assert_eq!(
            policy2.on_iteration_finish(&event(0, 30, 0.8), &mut ctx2),
            JobDecision::Continue,
            "no waiting work: keep the machine busy"
        );
    }

    #[test]
    fn strong_jobs_beat_weak_jobs_in_confidence_ranking() {
        let mut ctx = MockContext::new(2);
        ctx.push_curve(JobId::new(0), &saturating(0.85, 30), 60.0);
        ctx.push_curve(JobId::new(1), &saturating(0.60, 30), 60.0);
        ctx.active = vec![JobId::new(0), JobId::new(1)];
        let mut policy = pop();
        policy.on_iteration_finish(&event(0, 30, 0.8), &mut ctx);
        policy.on_iteration_finish(&event(1, 30, 0.55), &mut ctx);
        let strong = policy.assessment(JobId::new(0)).map(|a| a.confidence).unwrap_or(0.0);
        // The weak job may already have been pruned (p < 0.05); if it
        // survives, it must rank below the strong one.
        if let Some(weak) = policy.assessment(JobId::new(1)) {
            assert!(strong > weak.confidence);
        }
        assert!(strong > 0.3, "strong confidence {strong}");
    }

    #[test]
    fn timeline_records_snapshots() {
        let mut ctx = MockContext::new(4);
        ctx.push_curve(JobId::new(0), &saturating(0.85, 30), 60.0);
        ctx.active = vec![JobId::new(0)];
        let mut policy = pop();
        policy.on_iteration_finish(&event(0, 30, 0.8), &mut ctx);
        assert_eq!(policy.timeline().len(), 1);
        let snap = &policy.timeline()[0];
        assert_eq!(snap.active_jobs, 1);
        assert!(snap.promising_jobs <= 1);
    }

    #[test]
    fn static_threshold_ablation_bypasses_dynamic_p_star() {
        let mut ctx = MockContext::new(4);
        ctx.push_curve(JobId::new(0), &saturating(0.85, 30), 60.0);
        ctx.active = vec![JobId::new(0)];
        ctx.idle_jobs = vec![JobId::new(1)];
        // Impossible static threshold (confidence clamps at 1.0, so use a
        // value above 1): nothing is ever promising.
        let mut policy = PopPolicy::with_config(PopConfig {
            predictor: PredictorConfig::test(),
            static_threshold: Some(1.5),
            ..Default::default()
        });
        assert_eq!(
            policy.on_iteration_finish(&event(0, 30, 0.8), &mut ctx),
            JobDecision::Suspend,
            "with an unreachable static threshold every job is opportunistic"
        );
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = PopPolicy::with_config(PopConfig { k: 0, ..Default::default() });
    }

    #[test]
    fn fit_cost_prices_evals_and_clamps_observations() {
        let model = FitCostModel {
            secs_per_kiloeval: 2.0,
            modeled_workers: 1,
            fast_math_speedup: 1.0,
            batch_fit_speedup: 1.0,
        };
        let config = PredictorConfig::test();
        let base = model.fit_secs(&config, 1);
        assert!(base > 0.0);
        // Cost grows with observations up to the predictor's max_obs cap.
        assert!(model.fit_secs(&config, 5) > base);
        assert_eq!(
            model.fit_secs(&config, config.max_obs),
            model.fit_secs(&config, config.max_obs + 50),
            "observations beyond max_obs are subsampled, not paid for"
        );
    }

    #[test]
    fn warm_fits_are_priced_by_their_shorter_schedule() {
        let model = FitCostModel {
            secs_per_kiloeval: 2.0,
            modeled_workers: 1,
            fast_math_speedup: 1.0,
            batch_fit_speedup: 1.0,
        };
        let config = PredictorConfig::test();
        let cold = model.fit_secs(&config, 5);
        let warm = model.warm_fit_secs(&config, 5);
        assert!(warm < cold, "warm refits run fewer steps and must cost less");
        assert_eq!(
            warm / cold,
            config.warm_steps as f64 / config.steps as f64,
            "cost scales with the step schedule"
        );
    }

    #[test]
    fn batch_fit_speedup_discounts_only_fast_math_fits() {
        let model = FitCostModel {
            secs_per_kiloeval: 2.0,
            modeled_workers: 1,
            fast_math_speedup: 3.0,
            batch_fit_speedup: 2.0,
        };
        let libm = PredictorConfig::test();
        let fast = libm.with_fast_math(true);
        let batched = fast.with_batch_fit(true);
        assert_eq!(
            model.fit_secs(&fast, 5),
            model.fit_secs(&libm, 5) / 3.0,
            "fast_math discount unchanged"
        );
        assert_eq!(
            model.fit_secs(&batched, 5),
            model.fit_secs(&fast, 5) / 2.0,
            "batching discounts on top of fast_math"
        );
        assert_eq!(
            model.fit_secs(&libm.with_batch_fit(true), 5),
            model.fit_secs(&libm, 5),
            "batch_fit never prices libm fits — the service never batches them"
        );
    }

    #[test]
    fn makespan_overlaps_fits_across_modeled_workers() {
        let costs = [3.0, 3.0, 3.0, 3.0];
        let serial = FitCostModel {
            secs_per_kiloeval: 1.0,
            modeled_workers: 1,
            fast_math_speedup: 1.0,
            batch_fit_speedup: 1.0,
        };
        let quad = FitCostModel {
            secs_per_kiloeval: 1.0,
            modeled_workers: 4,
            fast_math_speedup: 1.0,
            batch_fit_speedup: 1.0,
        };
        assert_eq!(serial.makespan_secs(&costs), 12.0, "one worker pays the sum");
        assert_eq!(quad.makespan_secs(&costs), 3.0, "four workers fully overlap");
        // Uneven batch: greedy least-loaded puts {5} alone and {3, 2} together.
        let uneven = FitCostModel {
            secs_per_kiloeval: 1.0,
            modeled_workers: 2,
            fast_math_speedup: 1.0,
            batch_fit_speedup: 1.0,
        };
        assert_eq!(uneven.makespan_secs(&[5.0, 3.0, 2.0]), 5.0);
        assert_eq!(serial.makespan_secs(&[]), 0.0, "all-cached batches are free");
    }

    #[test]
    fn prefetch_boundary_follows_config_not_environment() {
        let pop_with = |fit_prefetch, boundary| {
            PopPolicy::with_config(PopConfig {
                predictor: PredictorConfig::test(),
                fit_prefetch,
                boundary,
                ..Default::default()
            })
        };
        // Explicit overrides win over whatever HYPERDRIVE_FIT_PREFETCH
        // says, so these hold in any test environment.
        assert_eq!(pop_with(Some(false), None).prefetch_boundary(10), None);
        assert_eq!(pop_with(Some(true), None).prefetch_boundary(10), Some(10));
        assert_eq!(pop_with(Some(true), Some(7)).prefetch_boundary(10), Some(7));
        assert_eq!(pop_with(Some(true), Some(0)).prefetch_boundary(0), Some(1));
    }

    #[test]
    fn hinted_boundary_fit_is_adopted_not_recomputed() {
        let mut ctx = MockContext::new(4);
        let values = saturating(0.85, 30);
        // The policy sees 29 observed epochs while epoch 30 is in flight.
        ctx.push_curve(JobId::new(0), &values[..29], 60.0);
        ctx.active = vec![JobId::new(0)];
        let mut policy = PopPolicy::with_config(PopConfig {
            predictor: PredictorConfig::test(),
            fit_prefetch: Some(true),
            ..Default::default()
        });
        let curve = ctx.curve(JobId::new(0)).expect("curve");
        let hint = PrefetchHint {
            job: JobId::new(0),
            epoch: 30,
            completion_time: SimTime::from_mins(30.0),
            value: values[29],
            max_epochs: ctx.max_epochs(),
            tmax: ctx.tmax(),
        };
        policy.prefetch_hint(&hint, &curve);
        assert_eq!(policy.spec_stats().speculated, 1);

        // The epoch lands; the boundary decision collects the speculation.
        let mut boundary_ctx = MockContext::new(4);
        boundary_ctx.push_curve(JobId::new(0), &values, 60.0);
        boundary_ctx.active = vec![JobId::new(0)];
        let decision = policy.on_iteration_finish(&event(0, 30, values[29]), &mut boundary_ctx);
        let spec = policy.spec_stats();
        assert_eq!((spec.adopted, spec.mismatched), (1, 0), "horizon math matched");
        assert_eq!(policy.fit_stats().fits, 1, "adopted fits still count as fits");

        // Byte-equivalence with the prefetch-off policy: same decision,
        // same assessment, same posterior digest.
        let mut plain = PopPolicy::with_config(PopConfig {
            predictor: PredictorConfig::test(),
            fit_prefetch: Some(false),
            ..Default::default()
        });
        let mut plain_ctx = MockContext::new(4);
        plain_ctx.push_curve(JobId::new(0), &values, 60.0);
        plain_ctx.active = vec![JobId::new(0)];
        assert_eq!(plain.on_iteration_finish(&event(0, 30, values[29]), &mut plain_ctx), decision);
        assert_eq!(
            policy.assessment(JobId::new(0)).map(|a| (a.confidence, a.ert)),
            plain.assessment(JobId::new(0)).map(|a| (a.confidence, a.ert)),
        );
        assert_eq!(policy.posterior_digest(), plain.posterior_digest());
    }

    #[test]
    fn out_of_step_hints_are_dropped() {
        let mut policy = PopPolicy::with_config(PopConfig {
            predictor: PredictorConfig::test(),
            fit_prefetch: Some(true),
            ..Default::default()
        });
        let mut ctx = MockContext::new(4);
        ctx.push_curve(JobId::new(0), &saturating(0.85, 20), 60.0);
        let curve = ctx.curve(JobId::new(0)).expect("curve");
        let hint = |epoch, completion: SimTime, tmax| PrefetchHint {
            job: JobId::new(0),
            epoch,
            completion_time: completion,
            value: 0.5,
            max_epochs: 120,
            tmax,
        };
        // A rollback between issue and drain leaves the curve behind the
        // hinted epoch; past Tmax the boundary never fits either.
        policy
            .prefetch_hint(&hint(30, SimTime::from_mins(30.0), SimTime::from_hours(12.0)), &curve);
        policy
            .prefetch_hint(&hint(21, SimTime::from_hours(13.0), SimTime::from_hours(12.0)), &curve);
        // At the final epoch no future remains to predict into.
        policy.prefetch_hint(
            &PrefetchHint {
                max_epochs: 21,
                ..hint(21, SimTime::from_mins(21.0), SimTime::from_hours(12.0))
            },
            &curve,
        );
        assert_eq!(policy.spec_stats().speculated, 0);
    }

    #[test]
    fn overhead_is_drained_not_accumulated() {
        let mut ctx = MockContext::new(4);
        ctx.push_curve(JobId::new(0), &saturating(0.85, 30), 60.0);
        ctx.active = vec![JobId::new(0)];
        let mut policy = PopPolicy::with_config(PopConfig {
            predictor: PredictorConfig::test(),
            fit_cost: Some(FitCostModel {
                secs_per_kiloeval: 1.0,
                modeled_workers: 1,
                fast_math_speedup: 1.0,
                batch_fit_speedup: 1.0,
            }),
            ..Default::default()
        });
        policy.on_iteration_finish(&event(0, 30, 0.8), &mut ctx);
        let first = policy.take_decision_overhead();
        assert!(first > SimTime::ZERO, "fresh fit was priced");
        assert_eq!(policy.take_decision_overhead(), SimTime::ZERO, "drain resets the meter");
    }
}
