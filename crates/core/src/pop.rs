//! The POP scheduling policy (§3, §5.3).
//!
//! At every evaluation boundary `b` of a job, POP:
//!
//! 1. applies the model-owner **kill threshold** (§2.1): a job still at or
//!    below known non-learning performance after a warmup number of
//!    evaluations is Poor and terminated;
//! 2. fits the probabilistic learning-curve model and computes the job's
//!    expected remaining time and **prediction confidence** `p` (§3.1.1);
//! 3. terminates jobs whose confidence falls below the lower bound
//!    (§5.3: "if it is less than 0.05 we terminate it");
//! 4. recomputes the **dynamic threshold** `p*` and promising-slot count
//!    from the confidences of all active jobs (§3.2), labels every active
//!    job with its priority, and classifies the current job;
//! 5. **Promising** jobs keep their machine; **Opportunistic** jobs are
//!    suspended at the boundary when other work is waiting ("if the job is
//!    opportunistic we suspend it and start a new job"), implementing
//!    round-robin sharing of the opportunistic pool.

use std::collections::{HashMap, HashSet};

use hyperdrive_curve::{CurvePredictor, PredictionService, PredictorConfig};
use hyperdrive_framework::{JobDecision, JobEvent, SchedulerContext, SchedulingPolicy};
use hyperdrive_types::{JobId, SimTime};

use crate::allocation::{allocate_slots, AllocationPoint};
use crate::ert::estimate_remaining_time;

/// How POP applies the §2.1 early-kill domain knowledge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KillRule {
    /// Use the workload's [`hyperdrive_types::DomainKnowledge`] threshold
    /// and warmup.
    DomainDefault,
    /// Use an explicit threshold/warmup pair.
    Custom {
        /// Normalized performance at or below which a job is Poor.
        threshold: f64,
        /// Evaluation boundaries to wait before applying the threshold.
        warmup_evals: u32,
    },
    /// Never kill on the threshold (ablation).
    Disabled,
}

/// Configuration for [`PopPolicy`].
#[derive(Debug, Clone, Copy)]
pub struct PopConfig {
    /// Curve-model fidelity.
    pub predictor: PredictorConfig,
    /// Dedicated slots per promising configuration (`k`; 1 for sequential
    /// training).
    pub k: usize,
    /// Confidence lower bound below which a job is terminated (§5.3:
    /// 0.05).
    pub lower_bound_confidence: f64,
    /// Early-kill rule.
    pub kill_rule: KillRule,
    /// Evaluation boundary override; `None` uses the workload's `b`.
    pub boundary: Option<u32>,
    /// Ablation: replace the dynamic `p*` with a static threshold
    /// (§2.2c's strawman).
    pub static_threshold: Option<f64>,
    /// §5.2's overlapped prediction: fits run on a worker pool concurrently
    /// with scheduling, and each boundary decision uses the fit submitted
    /// at the job's *previous* boundary (one boundary of staleness instead
    /// of blocking). Decisions remain deterministic — the posterior used
    /// at boundary N is always the boundary-(N−1) fit.
    pub async_prediction: bool,
    /// Worker threads for async prediction (0 = one per CPU).
    pub prediction_workers: usize,
    /// Base seed for prediction determinism.
    pub seed: u64,
}

impl Default for PopConfig {
    fn default() -> Self {
        PopConfig {
            predictor: PredictorConfig::fast(),
            k: 1,
            lower_bound_confidence: 0.05,
            kill_rule: KillRule::DomainDefault,
            boundary: None,
            static_threshold: None,
            async_prediction: false,
            prediction_workers: 0,
            seed: 0,
        }
    }
}

/// POP's latest assessment of one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobAssessment {
    /// Prediction confidence `p`.
    pub confidence: f64,
    /// Expected remaining time to target.
    pub ert: SimTime,
    /// Epoch at which the assessment was made.
    pub epoch: u32,
}

/// One recorded allocation decision, for the Fig. 4 reproduction.
#[derive(Debug, Clone)]
pub struct AllocationSnapshot {
    /// When the decision was taken.
    pub now: SimTime,
    /// Active (non-terminated) jobs at the time.
    pub active_jobs: usize,
    /// Jobs classified promising.
    pub promising_jobs: usize,
    /// Jobs currently occupying machines.
    pub running_jobs: usize,
    /// Of the running jobs, how many are classified promising — the
    /// numerator of Fig. 4c's "ratio of promising slots".
    pub promising_running: usize,
    /// The dynamic threshold `p*` in force.
    pub p_threshold: f64,
    /// Slots granted to the promising pool.
    pub promising_slots: usize,
    /// The full desired/deserved curve.
    pub curve: Vec<AllocationPoint>,
}

/// The POP scheduling policy.
#[derive(Debug)]
pub struct PopPolicy {
    config: PopConfig,
    assessments: HashMap<JobId, JobAssessment>,
    timeline: Vec<AllocationSnapshot>,
    predictions_made: u64,
    /// Async-prediction state: the worker pool and the set of fits
    /// submitted so far (so stale-fit lookups never wait on a fit that was
    /// never enqueued).
    service: Option<PredictionService>,
    submitted: HashSet<(JobId, u32)>,
}

impl PopPolicy {
    /// Creates POP with default (paper §5.3) parameters and fast predictor
    /// fidelity.
    pub fn new() -> Self {
        Self::with_config(PopConfig::default())
    }

    /// Creates POP with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or the lower bound is outside `[0, 1]`.
    pub fn with_config(config: PopConfig) -> Self {
        assert!(config.k > 0, "k must be positive");
        assert!(
            (0.0..=1.0).contains(&config.lower_bound_confidence),
            "lower bound must be a probability"
        );
        let service = if config.async_prediction {
            let workers = if config.prediction_workers == 0 {
                std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(2)
            } else {
                config.prediction_workers
            };
            Some(PredictionService::new(config.predictor.with_seed(config.seed), workers))
        } else {
            None
        };
        PopPolicy {
            config,
            assessments: HashMap::new(),
            timeline: Vec::new(),
            predictions_made: 0,
            service,
            submitted: HashSet::new(),
        }
    }

    /// The allocation decisions recorded so far (Fig. 4 instrumentation).
    pub fn timeline(&self) -> &[AllocationSnapshot] {
        &self.timeline
    }

    /// Number of curve-model fits performed (diagnostic; §5.2 overhead
    /// accounting).
    pub fn predictions_made(&self) -> u64 {
        self.predictions_made
    }

    /// POP's latest assessment of a job, if it has one.
    pub fn assessment(&self, job: JobId) -> Option<&JobAssessment> {
        self.assessments.get(&job)
    }

    /// Drops all state for a terminated job.
    fn forget(&mut self, job: JobId) {
        self.assessments.remove(&job);
        if let Some(service) = &self.service {
            service.forget(job);
        }
        self.submitted.retain(|(j, _)| *j != job);
    }

    fn kill_params(&self, ctx: &dyn SchedulerContext) -> Option<(f64, u32)> {
        match self.config.kill_rule {
            KillRule::DomainDefault => {
                let dk = ctx.domain();
                Some((dk.kill_threshold, dk.kill_warmup_evals))
            }
            KillRule::Custom { threshold, warmup_evals } => Some((threshold, warmup_evals)),
            KillRule::Disabled => None,
        }
    }
}

impl Default for PopPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulingPolicy for PopPolicy {
    fn name(&self) -> &str {
        "pop"
    }

    fn on_iteration_finish(
        &mut self,
        event: &JobEvent,
        ctx: &mut dyn SchedulerContext,
    ) -> JobDecision {
        let b = self.config.boundary.unwrap_or_else(|| ctx.eval_boundary()).max(1);
        if !event.epoch.is_multiple_of(b) {
            return JobDecision::Continue;
        }
        let evals = event.epoch / b;
        let Some(curve) = ctx.curve(event.job) else {
            return JobDecision::Continue;
        };

        // Step 1: domain-knowledge kill threshold (Poor, not learning).
        if let Some((threshold, warmup)) = self.kill_params(ctx) {
            if evals >= warmup && curve.best().is_some_and(|best| best <= threshold) {
                self.forget(event.job);
                return JobDecision::Terminate;
            }
        }

        // Step 2: probabilistic assessment.
        let budget = ctx.tmax().saturating_sub(event.now);
        let epoch_duration = curve
            .mean_epoch_duration()
            .unwrap_or_else(|| SimTime::from_secs(event.now.as_secs() / f64::from(event.epoch)));
        if budget <= SimTime::ZERO || epoch_duration <= SimTime::ZERO {
            return JobDecision::Continue; // Tmax imminent; the engine stops anyway.
        }
        let m_budget = (budget.as_secs() / epoch_duration.as_secs()).floor() as u32;
        let m_epochs = ctx.max_epochs().saturating_sub(event.epoch);
        let max_future = m_budget.min(m_epochs);
        if max_future >= 1 {
            let posterior = match &self.service {
                // §5.2 overlapped mode: enqueue a fit on the current prefix
                // and decide with the fit from the previous boundary.
                Some(service) => {
                    if service.submit(event.job, &curve, event.epoch + max_future) {
                        self.submitted.insert((event.job, event.epoch));
                        self.predictions_made += 1;
                    }
                    let prev = event.epoch.saturating_sub(b);
                    if prev >= 1 && self.submitted.contains(&(event.job, prev)) {
                        service.wait(event.job, prev).ok()
                    } else {
                        None // first boundary: no completed fit yet
                    }
                }
                None => {
                    let seed = self
                        .config
                        .seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(event.job.raw() << 24)
                        .wrapping_add(u64::from(event.epoch));
                    let predictor = CurvePredictor::new(self.config.predictor.with_seed(seed));
                    let fit = predictor.fit(&curve, event.epoch + max_future).ok();
                    if fit.is_some() {
                        self.predictions_made += 1;
                    }
                    fit
                }
            };
            if let Some(posterior) = posterior {
                let est = estimate_remaining_time(
                    &posterior,
                    ctx.target(),
                    max_future,
                    epoch_duration,
                    budget,
                );
                self.assessments.insert(
                    event.job,
                    JobAssessment { confidence: est.confidence, ert: est.ert, epoch: event.epoch },
                );
                // Step 3: prune jobs unlikely to ever reach the target.
                if est.confidence < self.config.lower_bound_confidence && evals >= 2 {
                    self.forget(event.job);
                    return JobDecision::Terminate;
                }
            }
        }

        // Step 4: dynamic classification across all active jobs.
        let active = ctx.active_jobs();
        let confidences: Vec<f64> =
            active.iter().map(|j| self.assessments.get(j).map_or(0.0, |a| a.confidence)).collect();
        let alloc = allocate_slots(&confidences, ctx.total_slots(), self.config.k);
        let (p_threshold, promising_cap) = match self.config.static_threshold {
            Some(t) => (t, ctx.total_slots()),
            None => (alloc.p_threshold, alloc.promising_slots),
        };

        // Rank active jobs by confidence and take the top `promising_cap`
        // among those meeting the threshold.
        let mut ranked: Vec<(JobId, f64)> =
            active.iter().zip(&confidences).map(|(j, c)| (*j, *c)).collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).expect("confidences are probabilities").then(a.0.cmp(&b.0))
        });
        let promising: Vec<JobId> = ranked
            .iter()
            .filter(|(_, c)| *c >= p_threshold)
            .take(promising_cap)
            .map(|(j, _)| *j)
            .collect();

        // Step 5: priority labels — promising jobs carry their confidence,
        // opportunistic jobs share priority zero (round-robin FIFO).
        for (job, confidence) in &ranked {
            let priority = if promising.contains(job) { *confidence } else { 0.0 };
            ctx.label_job(*job, priority);
        }

        let running = ctx.running_jobs();
        let promising_running = running.iter().filter(|j| promising.contains(j)).count();
        self.timeline.push(AllocationSnapshot {
            now: event.now,
            active_jobs: active.len(),
            promising_jobs: promising.len(),
            running_jobs: running.len(),
            promising_running,
            p_threshold,
            promising_slots: promising_cap.min(promising.len()),
            curve: alloc.curve,
        });

        if promising.contains(&event.job) {
            JobDecision::Continue
        } else if ctx.idle_job_count() > 0 {
            // Opportunistic: yield the machine to the next waiting job.
            JobDecision::Suspend
        } else {
            // Nobody is waiting; suspension would only waste snapshot cost.
            JobDecision::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperdrive_framework::testing::MockContext;

    fn event(job: u64, epoch: u32, value: f64) -> JobEvent {
        JobEvent { job: JobId::new(job), epoch, value, now: SimTime::from_mins(f64::from(epoch)) }
    }

    fn pop() -> PopPolicy {
        PopPolicy::with_config(PopConfig {
            predictor: PredictorConfig::test(),
            ..Default::default()
        })
    }

    /// Saturating curve rising from 0.1 toward `limit`.
    fn saturating(limit: f64, n: usize) -> Vec<f64> {
        (1..=n).map(|x| limit - (limit - 0.1) * (x as f64).powf(-0.8)).collect()
    }

    #[test]
    fn ignores_non_boundary_epochs() {
        let mut ctx = MockContext::new(4);
        let mut policy = pop();
        for epoch in [1, 9, 11, 15, 21] {
            assert_eq!(
                policy.on_iteration_finish(&event(0, epoch, 0.1), &mut ctx),
                JobDecision::Continue
            );
        }
        assert_eq!(policy.predictions_made(), 0);
    }

    #[test]
    fn kill_threshold_terminates_non_learners() {
        // Disable the confidence prune so the test isolates the §2.1 kill
        // threshold (CIFAR-10 knowledge: kill at <= 0.15 after 3 evals).
        let make_policy = || {
            PopPolicy::with_config(PopConfig {
                predictor: PredictorConfig::test(),
                lower_bound_confidence: 0.0,
                ..Default::default()
            })
        };
        let mut ctx = MockContext::new(4);
        ctx.push_curve(JobId::new(0), &vec![0.10; 30], 60.0);
        ctx.active = vec![JobId::new(0)];
        let mut policy = make_policy();
        assert_eq!(
            policy.on_iteration_finish(&event(0, 20, 0.1), &mut ctx),
            JobDecision::Continue,
            "within warmup (2 evals < 3)"
        );
        assert_eq!(
            policy.on_iteration_finish(&event(0, 30, 0.1), &mut ctx),
            JobDecision::Terminate,
            "past warmup and below kill threshold"
        );
    }

    #[test]
    fn confidence_prune_also_catches_flat_curves() {
        // With the default lower bound, a flat 10% curve dies at the second
        // boundary via p < 0.05 — even before the kill-threshold warmup.
        let mut ctx = MockContext::new(4);
        ctx.push_curve(JobId::new(0), &[0.10; 20], 60.0);
        ctx.active = vec![JobId::new(0)];
        let mut policy = pop();
        assert_eq!(
            policy.on_iteration_finish(&event(0, 20, 0.1), &mut ctx),
            JobDecision::Terminate
        );
    }

    #[test]
    fn kill_rule_can_be_disabled() {
        let mut ctx = MockContext::new(4);
        ctx.push_curve(JobId::new(0), &vec![0.10; 30], 60.0);
        ctx.active = vec![JobId::new(0)];
        let mut policy = PopPolicy::with_config(PopConfig {
            predictor: PredictorConfig::test(),
            kill_rule: KillRule::Disabled,
            lower_bound_confidence: 0.0, // isolate the kill-rule effect
            ..Default::default()
        });
        assert_eq!(policy.on_iteration_finish(&event(0, 30, 0.1), &mut ctx), JobDecision::Continue);
    }

    #[test]
    fn low_confidence_job_is_pruned() {
        let mut ctx = MockContext::new(4);
        // Learning (escapes the kill threshold) but saturating far below
        // the 0.77 target.
        ctx.push_curve(JobId::new(0), &saturating(0.30, 30), 60.0);
        ctx.active = vec![JobId::new(0)];
        let mut policy = pop();
        assert_eq!(
            policy.on_iteration_finish(&event(0, 30, 0.29), &mut ctx),
            JobDecision::Terminate,
            "p < 0.05 prune"
        );
        assert!(policy.predictions_made() > 0);
    }

    #[test]
    fn promising_job_continues_and_is_labelled() {
        let mut ctx = MockContext::new(4);
        ctx.push_curve(JobId::new(0), &saturating(0.85, 30), 60.0);
        ctx.active = vec![JobId::new(0)];
        ctx.idle_jobs = vec![JobId::new(1)];
        let mut policy = pop();
        let decision = policy.on_iteration_finish(&event(0, 30, 0.8), &mut ctx);
        assert_eq!(decision, JobDecision::Continue);
        let a = policy.assessment(JobId::new(0)).expect("assessed");
        assert!(a.confidence > 0.5, "confidence {}", a.confidence);
        let label = ctx.labels.iter().find(|(j, _)| *j == JobId::new(0)).expect("labelled");
        assert!(label.1 > 0.0, "promising jobs carry their confidence as priority");
    }

    #[test]
    fn opportunistic_job_suspends_only_when_work_waits() {
        // Pin the threshold above any achievable confidence so the strong
        // job is classified opportunistic, isolating the suspend decision.
        let setup = |idle: Vec<JobId>| -> (MockContext, PopPolicy) {
            let mut ctx = MockContext::new(2);
            ctx.push_curve(JobId::new(0), &saturating(0.85, 30), 60.0);
            ctx.active = vec![JobId::new(0)];
            ctx.idle_jobs = idle;
            let policy = PopPolicy::with_config(PopConfig {
                predictor: PredictorConfig::test(),
                static_threshold: Some(1.5),
                ..Default::default()
            });
            (ctx, policy)
        };
        let (mut ctx, mut policy) = setup(vec![JobId::new(3)]);
        assert_eq!(
            policy.on_iteration_finish(&event(0, 30, 0.8), &mut ctx),
            JobDecision::Suspend,
            "opportunistic with waiting work"
        );
        let (mut ctx2, mut policy2) = setup(Vec::new());
        assert_eq!(
            policy2.on_iteration_finish(&event(0, 30, 0.8), &mut ctx2),
            JobDecision::Continue,
            "no waiting work: keep the machine busy"
        );
    }

    #[test]
    fn strong_jobs_beat_weak_jobs_in_confidence_ranking() {
        let mut ctx = MockContext::new(2);
        ctx.push_curve(JobId::new(0), &saturating(0.85, 30), 60.0);
        ctx.push_curve(JobId::new(1), &saturating(0.60, 30), 60.0);
        ctx.active = vec![JobId::new(0), JobId::new(1)];
        let mut policy = pop();
        policy.on_iteration_finish(&event(0, 30, 0.8), &mut ctx);
        policy.on_iteration_finish(&event(1, 30, 0.55), &mut ctx);
        let strong = policy.assessment(JobId::new(0)).map(|a| a.confidence).unwrap_or(0.0);
        // The weak job may already have been pruned (p < 0.05); if it
        // survives, it must rank below the strong one.
        if let Some(weak) = policy.assessment(JobId::new(1)) {
            assert!(strong > weak.confidence);
        }
        assert!(strong > 0.3, "strong confidence {strong}");
    }

    #[test]
    fn timeline_records_snapshots() {
        let mut ctx = MockContext::new(4);
        ctx.push_curve(JobId::new(0), &saturating(0.85, 30), 60.0);
        ctx.active = vec![JobId::new(0)];
        let mut policy = pop();
        policy.on_iteration_finish(&event(0, 30, 0.8), &mut ctx);
        assert_eq!(policy.timeline().len(), 1);
        let snap = &policy.timeline()[0];
        assert_eq!(snap.active_jobs, 1);
        assert!(snap.promising_jobs <= 1);
    }

    #[test]
    fn static_threshold_ablation_bypasses_dynamic_p_star() {
        let mut ctx = MockContext::new(4);
        ctx.push_curve(JobId::new(0), &saturating(0.85, 30), 60.0);
        ctx.active = vec![JobId::new(0)];
        ctx.idle_jobs = vec![JobId::new(1)];
        // Impossible static threshold (confidence clamps at 1.0, so use a
        // value above 1): nothing is ever promising.
        let mut policy = PopPolicy::with_config(PopConfig {
            predictor: PredictorConfig::test(),
            static_threshold: Some(1.5),
            ..Default::default()
        });
        assert_eq!(
            policy.on_iteration_finish(&event(0, 30, 0.8), &mut ctx),
            JobDecision::Suspend,
            "with an unreachable static threshold every job is opportunistic"
        );
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = PopPolicy::with_config(PopConfig { k: 0, ..Default::default() });
    }
}
