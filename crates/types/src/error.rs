//! Error handling shared across the workspace.

use std::fmt;

/// A specialized `Result` using [`enum@Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by HyperDrive components.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A caller supplied an invalid parameter (message describes which).
    InvalidParameter(String),
    /// A job id was not known to the component that received it.
    UnknownJob(u64),
    /// A machine id was not known to the Resource Manager.
    UnknownMachine(u64),
    /// A cluster was configured with zero machines.
    EmptyCluster,
    /// An operation was attempted in a job state that does not allow it
    /// (e.g. resuming a job that is not suspended).
    InvalidJobState {
        /// The job the operation targeted.
        job: u64,
        /// Human-readable description of the violated transition.
        detail: String,
    },
    /// The hyperparameter generator was exhausted (grid search ran out of
    /// points).
    GeneratorExhausted,
    /// Curve fitting failed to produce a usable model (e.g. too few
    /// observations).
    CurveFit(String),
    /// A trace file could not be parsed.
    TraceFormat(String),
    /// An I/O error, stringified to keep the error type `Clone + PartialEq`.
    Io(String),
    /// A write-ahead journal was written by an incompatible format version.
    JournalVersion {
        /// The version found in the journal header.
        found: u32,
        /// The version this binary writes and reads.
        expected: u32,
    },
    /// A journal record in the middle of the log failed its checksum. A
    /// torn *final* record is truncated and replayed past automatically;
    /// mid-log damage cannot be trusted and must be repaired by hand.
    JournalCorrupt {
        /// Byte offset of the first unreadable record.
        offset: u64,
    },
    /// Replay produced different state than the journal records — the
    /// recovered run diverged from the original (non-deterministic policy,
    /// changed binary, or wrong run parameters).
    JournalDiverged {
        /// Index of the first mismatching record.
        record: u64,
        /// What differed.
        detail: String,
    },
    /// The journal belongs to a different run (workload, spec, fault plan,
    /// or policy mismatch).
    JournalMismatch(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::UnknownJob(id) => write!(f, "unknown job id {id}"),
            Error::UnknownMachine(id) => write!(f, "unknown machine id {id}"),
            Error::EmptyCluster => write!(f, "a cluster needs at least one machine"),
            Error::InvalidJobState { job, detail } => {
                write!(f, "invalid state for job {job}: {detail}")
            }
            Error::GeneratorExhausted => write!(f, "hyperparameter generator exhausted"),
            Error::CurveFit(msg) => write!(f, "curve fit failed: {msg}"),
            Error::TraceFormat(msg) => write!(f, "malformed trace: {msg}"),
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
            Error::JournalVersion { found, expected } => {
                write!(
                    f,
                    "journal format version {found} unsupported (this build reads {expected})"
                )
            }
            Error::JournalCorrupt { offset } => write!(
                f,
                "journal corrupt at byte {offset}: mid-log damage cannot be replayed past; \
                 restore the file or delete it to start a fresh run"
            ),
            Error::JournalDiverged { record, detail } => {
                write!(f, "journal replay diverged at record {record}: {detail}")
            }
            Error::JournalMismatch(msg) => {
                write!(f, "journal belongs to a different run: {msg}")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(err: std::io::Error) -> Self {
        Error::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_trailing_punctuation() {
        let cases: Vec<Error> = vec![
            Error::InvalidParameter("x must be positive".into()),
            Error::UnknownJob(3),
            Error::UnknownMachine(4),
            Error::EmptyCluster,
            Error::InvalidJobState { job: 1, detail: "resume while running".into() },
            Error::GeneratorExhausted,
            Error::CurveFit("too few points".into()),
            Error::TraceFormat("line 7".into()),
            Error::Io("disk on fire".into()),
            Error::JournalVersion { found: 9, expected: 1 },
            Error::JournalCorrupt { offset: 1234 },
            Error::JournalDiverged { record: 17, detail: "transition mismatch".into() },
            Error::JournalMismatch("seed differs".into()),
        ];
        for e in cases {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "no trailing period in {s:?}");
            assert!(s.chars().next().unwrap().is_lowercase(), "lowercase start in {s:?}");
        }
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
