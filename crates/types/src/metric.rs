//! Performance metrics and normalization.
//!
//! Supervised learning reports validation accuracy in `[0, 1]`;
//! reinforcement learning reports reward on an arbitrary scale (LunarLander:
//! roughly `[-500, 300]`). Scheduling policies compare configurations on a
//! single scale, so §6.3 of the paper normalizes rewards with min-max scaling
//! (Eq. 4). [`MetricNormalizer`] implements that transform; [`MetricKind`]
//! records which raw metric a value means.

use crate::error::{Error, Result};

/// The kind of task-performance metric a learning domain reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MetricKind {
    /// Validation accuracy in `[0, 1]` (supervised learning). Higher is
    /// better.
    #[default]
    Accuracy,
    /// Task reward on an environment-specific scale (reinforcement
    /// learning). Higher is better.
    Reward,
    /// Loss or perplexity style metric where lower is better. Stored
    /// negated internally by callers that need a uniform "higher is better"
    /// view; kept for the ongoing-work LSTM/perplexity scenario of §9.
    LowerIsBetter,
}

impl MetricKind {
    /// True if larger raw values mean better task performance.
    pub fn higher_is_better(self) -> bool {
        !matches!(self, MetricKind::LowerIsBetter)
    }
}

/// Min-max scaling of raw metric values into `[0, 1]` (paper Eq. 4):
/// `r_norm = (r - r_min) / (r_max - r_min)`.
///
/// For accuracy the identity normalizer (`r_min = 0, r_max = 1`) is used.
/// For LunarLander the paper uses `r_min = -500`, `r_max = 300`, where the
/// upper bound comes from the environment and the lower bound is determined
/// empirically.
///
/// Values outside the declared range are clamped rather than rejected: live
/// RL rewards occasionally undershoot the empirical minimum and the
/// scheduler must keep working.
///
/// # Example
///
/// ```
/// use hyperdrive_types::MetricNormalizer;
///
/// let norm = MetricNormalizer::lunar_lander();
/// let solved = norm.normalize(200.0);
/// assert!((solved - 0.875).abs() < 1e-12);
/// assert_eq!(norm.denormalize(solved), 200.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricNormalizer {
    min: f64,
    max: f64,
}

impl MetricNormalizer {
    /// Creates a normalizer for raw values in `[min, max]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `min >= max` or either bound is
    /// not finite.
    pub fn new(min: f64, max: f64) -> Result<Self> {
        if !min.is_finite() || !max.is_finite() || min >= max {
            return Err(Error::InvalidParameter(format!(
                "metric range must be finite with min < max, got [{min}, {max}]"
            )));
        }
        Ok(MetricNormalizer { min, max })
    }

    /// The identity normalizer for metrics already in `[0, 1]` (accuracy).
    pub fn identity() -> Self {
        MetricNormalizer { min: 0.0, max: 1.0 }
    }

    /// The paper's LunarLander normalizer: `r_min = -500`, `r_max = 300`.
    pub fn lunar_lander() -> Self {
        MetricNormalizer { min: -500.0, max: 300.0 }
    }

    /// Lower bound of the raw range.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound of the raw range.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Maps a raw value into `[0, 1]`, clamping values outside the declared
    /// range.
    pub fn normalize(&self, raw: f64) -> f64 {
        let x = (raw - self.min) / (self.max - self.min);
        x.clamp(0.0, 1.0)
    }

    /// Maps a normalized value in `[0, 1]` back to the raw scale.
    pub fn denormalize(&self, normalized: f64) -> f64 {
        self.min + normalized * (self.max - self.min)
    }
}

impl Default for MetricNormalizer {
    fn default() -> Self {
        Self::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_passes_values_through() {
        let n = MetricNormalizer::identity();
        assert_eq!(n.normalize(0.42), 0.42);
        assert_eq!(n.denormalize(0.42), 0.42);
    }

    #[test]
    fn lunar_lander_matches_paper_constants() {
        let n = MetricNormalizer::lunar_lander();
        assert_eq!(n.min(), -500.0);
        assert_eq!(n.max(), 300.0);
        // Crash reward -100 normalizes to 0.5.
        assert!((n.normalize(-100.0) - 0.5).abs() < 1e-12);
        // Solved reward 200 normalizes to 0.875.
        assert!((n.normalize(200.0) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let n = MetricNormalizer::lunar_lander();
        assert_eq!(n.normalize(-10_000.0), 0.0);
        assert_eq!(n.normalize(10_000.0), 1.0);
    }

    #[test]
    fn invalid_ranges_are_rejected() {
        assert!(MetricNormalizer::new(1.0, 1.0).is_err());
        assert!(MetricNormalizer::new(2.0, 1.0).is_err());
        assert!(MetricNormalizer::new(f64::NAN, 1.0).is_err());
        assert!(MetricNormalizer::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn metric_kind_direction() {
        assert!(MetricKind::Accuracy.higher_is_better());
        assert!(MetricKind::Reward.higher_is_better());
        assert!(!MetricKind::LowerIsBetter.higher_is_better());
    }

    #[test]
    fn normalize_denormalize_round_trip() {
        let n = MetricNormalizer::new(-3.0, 7.5).unwrap();
        for raw in [-3.0, -1.0, 0.0, 2.2, 7.5] {
            let back = n.denormalize(n.normalize(raw));
            assert!((back - raw).abs() < 1e-12, "raw {raw} -> {back}");
        }
    }
}
