//! Hyperparameter spaces and concrete configurations.
//!
//! A [`HyperParamSpace`] declares named parameters with search ranges
//! (continuous, optionally log-scaled; integer; categorical). Generators
//! sample or enumerate the space to produce [`Configuration`]s — the
//! "specific set of hyperparameter values" the paper schedules as jobs.

use std::collections::BTreeMap;
use std::fmt;

use rand::Rng;

use crate::error::{Error, Result};

/// The search range of a single hyperparameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamRange {
    /// A continuous value in `[low, high]`. If `log` is true the value is
    /// sampled log-uniformly (standard for learning rates and
    /// regularization strengths).
    Continuous {
        /// Lower bound (inclusive).
        low: f64,
        /// Upper bound (inclusive).
        high: f64,
        /// Sample log-uniformly instead of uniformly.
        log: bool,
    },
    /// An integer value in `[low, high]`.
    Integer {
        /// Lower bound (inclusive).
        low: i64,
        /// Upper bound (inclusive).
        high: i64,
    },
    /// One of a fixed set of choices.
    Categorical(Vec<String>),
}

impl ParamRange {
    /// Validates internal consistency.
    fn validate(&self, name: &str) -> Result<()> {
        match self {
            ParamRange::Continuous { low, high, log } => {
                if !low.is_finite() || !high.is_finite() || low >= high {
                    return Err(Error::InvalidParameter(format!(
                        "parameter {name}: continuous range must satisfy low < high, got [{low}, {high}]"
                    )));
                }
                if *log && *low <= 0.0 {
                    return Err(Error::InvalidParameter(format!(
                        "parameter {name}: log-scaled range requires low > 0, got {low}"
                    )));
                }
                Ok(())
            }
            ParamRange::Integer { low, high } => {
                if low > high {
                    return Err(Error::InvalidParameter(format!(
                        "parameter {name}: integer range must satisfy low <= high, got [{low}, {high}]"
                    )));
                }
                Ok(())
            }
            ParamRange::Categorical(choices) => {
                if choices.is_empty() {
                    return Err(Error::InvalidParameter(format!(
                        "parameter {name}: categorical range needs at least one choice"
                    )));
                }
                Ok(())
            }
        }
    }

    /// Draws one value uniformly (or log-uniformly) from the range.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ParamValue {
        match self {
            ParamRange::Continuous { low, high, log } => {
                let v = if *log {
                    let (ll, lh) = (low.ln(), high.ln());
                    rng.gen_range(ll..=lh).exp()
                } else {
                    rng.gen_range(*low..=*high)
                };
                ParamValue::Float(v)
            }
            ParamRange::Integer { low, high } => ParamValue::Int(rng.gen_range(*low..=*high)),
            ParamRange::Categorical(choices) => {
                let i = rng.gen_range(0..choices.len());
                ParamValue::Choice(choices[i].clone())
            }
        }
    }

    /// Enumerates `n` evenly spaced values for grid search. Categorical
    /// parameters return all choices regardless of `n`; integer ranges are
    /// subsampled evenly when they contain more than `n` values.
    pub fn grid(&self, n: usize) -> Vec<ParamValue> {
        let n = n.max(1);
        match self {
            ParamRange::Continuous { low, high, log } => {
                if n == 1 {
                    let mid = if *log {
                        ((low.ln() + high.ln()) / 2.0).exp()
                    } else {
                        (low + high) / 2.0
                    };
                    return vec![ParamValue::Float(mid)];
                }
                (0..n)
                    .map(|i| {
                        let t = i as f64 / (n - 1) as f64;
                        let v = if *log {
                            (low.ln() + t * (high.ln() - low.ln())).exp()
                        } else {
                            low + t * (high - low)
                        };
                        ParamValue::Float(v)
                    })
                    .collect()
            }
            ParamRange::Integer { low, high } => {
                let span = (high - low) as usize + 1;
                if span <= n {
                    (*low..=*high).map(ParamValue::Int).collect()
                } else {
                    (0..n)
                        .map(|i| {
                            let t = i as f64 / (n - 1).max(1) as f64;
                            ParamValue::Int(low + (t * (high - low) as f64).round() as i64)
                        })
                        .collect()
                }
            }
            ParamRange::Categorical(choices) => {
                choices.iter().cloned().map(ParamValue::Choice).collect()
            }
        }
    }
}

/// A concrete value assigned to a hyperparameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Continuous value.
    Float(f64),
    /// Integer value.
    Int(i64),
    /// Categorical choice.
    Choice(String),
}

impl ParamValue {
    /// Returns the value as `f64` where that makes sense (floats and ints);
    /// categorical choices return `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Float(v) => Some(*v),
            ParamValue::Int(v) => Some(*v as f64),
            ParamValue::Choice(_) => None,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Float(v) => write!(f, "{v}"),
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Choice(s) => write!(f, "{s}"),
        }
    }
}

/// A named set of hyperparameter ranges.
///
/// # Example
///
/// ```
/// use hyperdrive_types::{HyperParamSpace, ParamRange};
/// use rand::SeedableRng;
///
/// let space = HyperParamSpace::builder()
///     .continuous_log("learning_rate", 1e-5, 1.0)
///     .continuous("momentum", 0.0, 0.99)
///     .integer("hidden_layers", 1, 4)
///     .categorical("activation", ["relu", "tanh"])
///     .build()?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let config = space.sample(&mut rng);
/// assert_eq!(config.len(), 4);
/// # Ok::<(), hyperdrive_types::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HyperParamSpace {
    params: Vec<(String, ParamRange)>,
}

impl HyperParamSpace {
    /// Starts building a space.
    pub fn builder() -> SpaceBuilder {
        SpaceBuilder { params: Vec::new() }
    }

    /// The declared parameters, in declaration order.
    pub fn params(&self) -> &[(String, ParamRange)] {
        &self.params
    }

    /// Number of parameters (the space's dimensionality).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Looks up a parameter's range by name.
    pub fn range(&self, name: &str) -> Option<&ParamRange> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }

    /// Samples one random configuration.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Configuration {
        let values =
            self.params.iter().map(|(name, range)| (name.clone(), range.sample(rng))).collect();
        Configuration { values }
    }

    /// Enumerates the full cartesian grid with `per_dim` points per
    /// dimension. The result has up to `per_dim^len()` configurations —
    /// callers are expected to keep `per_dim` small (the paper's point is
    /// precisely that exhaustive grids are impractical).
    pub fn grid(&self, per_dim: usize) -> Vec<Configuration> {
        let axes: Vec<(String, Vec<ParamValue>)> =
            self.params.iter().map(|(name, range)| (name.clone(), range.grid(per_dim))).collect();
        let mut configs = vec![Configuration { values: BTreeMap::new() }];
        for (name, values) in axes {
            let mut next = Vec::with_capacity(configs.len() * values.len());
            for base in &configs {
                for v in &values {
                    let mut c = base.clone();
                    c.values.insert(name.clone(), v.clone());
                    next.push(c);
                }
            }
            configs = next;
        }
        configs
    }
}

/// Builder for [`HyperParamSpace`].
#[derive(Debug, Clone)]
pub struct SpaceBuilder {
    params: Vec<(String, ParamRange)>,
}

impl SpaceBuilder {
    /// Adds a uniformly sampled continuous parameter.
    pub fn continuous(mut self, name: impl Into<String>, low: f64, high: f64) -> Self {
        self.params.push((name.into(), ParamRange::Continuous { low, high, log: false }));
        self
    }

    /// Adds a log-uniformly sampled continuous parameter.
    pub fn continuous_log(mut self, name: impl Into<String>, low: f64, high: f64) -> Self {
        self.params.push((name.into(), ParamRange::Continuous { low, high, log: true }));
        self
    }

    /// Adds an integer parameter.
    pub fn integer(mut self, name: impl Into<String>, low: i64, high: i64) -> Self {
        self.params.push((name.into(), ParamRange::Integer { low, high }));
        self
    }

    /// Adds a categorical parameter.
    pub fn categorical<I, S>(mut self, name: impl Into<String>, choices: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let choices = choices.into_iter().map(Into::into).collect();
        self.params.push((name.into(), ParamRange::Categorical(choices)));
        self
    }

    /// Finishes the build, validating every range and rejecting duplicate
    /// names.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for empty spaces, duplicate
    /// parameter names, or invalid ranges.
    pub fn build(self) -> Result<HyperParamSpace> {
        if self.params.is_empty() {
            return Err(Error::InvalidParameter("hyperparameter space is empty".into()));
        }
        for (i, (name, range)) in self.params.iter().enumerate() {
            range.validate(name)?;
            if self.params[..i].iter().any(|(n, _)| n == name) {
                return Err(Error::InvalidParameter(format!(
                    "duplicate hyperparameter name {name}"
                )));
            }
        }
        Ok(HyperParamSpace { params: self.params })
    }
}

/// A concrete assignment of values to every parameter of a space.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Configuration {
    values: BTreeMap<String, ParamValue>,
}

impl Configuration {
    /// Creates an empty configuration; mainly useful in tests.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets one value, replacing any previous assignment.
    pub fn set(&mut self, name: impl Into<String>, value: ParamValue) {
        self.values.insert(name.into(), value);
    }

    /// Looks up a value by parameter name.
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.values.get(name)
    }

    /// Looks up a value and converts it to `f64` (see
    /// [`ParamValue::as_f64`]).
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        self.values.get(name).and_then(ParamValue::as_f64)
    }

    /// Number of assigned parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if nothing is assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// A stable 64-bit hash of the configuration (FNV-1a over names and
    /// value bits, in name order). Workload generators use it to derive
    /// configuration-*intrinsic* properties (e.g. whether an RL agent
    /// eventually crashes) that must not change across training-noise
    /// seeds.
    pub fn stable_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(mut h: u64, bytes: &[u8]) -> u64 {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(PRIME);
            }
            h
        }
        let mut h = OFFSET;
        for (name, value) in &self.values {
            h = mix(h, name.as_bytes());
            h = match value {
                ParamValue::Float(v) => mix(h, &v.to_bits().to_le_bytes()),
                ParamValue::Int(v) => mix(h, &v.to_le_bytes()),
                ParamValue::Choice(s) => mix(h, s.as_bytes()),
            };
        }
        h
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for (k, v) in &self.values {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> HyperParamSpace {
        HyperParamSpace::builder()
            .continuous_log("lr", 1e-5, 1.0)
            .continuous("momentum", 0.0, 0.99)
            .integer("layers", 1, 4)
            .categorical("act", ["relu", "tanh", "sigmoid"])
            .build()
            .unwrap()
    }

    #[test]
    fn sampling_respects_ranges() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let c = s.sample(&mut rng);
            let lr = c.get_f64("lr").unwrap();
            assert!((1e-5..=1.0).contains(&lr), "lr {lr}");
            let m = c.get_f64("momentum").unwrap();
            assert!((0.0..=0.99).contains(&m));
            let layers = c.get_f64("layers").unwrap();
            assert!((1.0..=4.0).contains(&layers));
            match c.get("act").unwrap() {
                ParamValue::Choice(a) => {
                    assert!(["relu", "tanh", "sigmoid"].contains(&a.as_str()))
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn log_sampling_spreads_across_decades() {
        let s = HyperParamSpace::builder().continuous_log("lr", 1e-6, 1.0).build().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut below_1e3 = 0;
        let n = 1000;
        for _ in 0..n {
            let lr = s.sample(&mut rng).get_f64("lr").unwrap();
            if lr < 1e-3 {
                below_1e3 += 1;
            }
        }
        // Log-uniform puts half the mass below the geometric midpoint 1e-3;
        // a uniform sampler would put ~0.1% there.
        assert!(below_1e3 > n * 4 / 10, "log sampling skew: {below_1e3}/{n}");
    }

    #[test]
    fn grid_enumerates_cartesian_product() {
        let s = HyperParamSpace::builder()
            .continuous("a", 0.0, 1.0)
            .categorical("b", ["x", "y", "z"])
            .build()
            .unwrap();
        let grid = s.grid(2);
        assert_eq!(grid.len(), 2 * 3);
        assert!(grid.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn grid_endpoints_are_included() {
        let r = ParamRange::Continuous { low: 2.0, high: 6.0, log: false };
        let g = r.grid(3);
        assert_eq!(g, vec![ParamValue::Float(2.0), ParamValue::Float(4.0), ParamValue::Float(6.0)]);
    }

    #[test]
    fn integer_grid_subsamples_wide_ranges() {
        let r = ParamRange::Integer { low: 0, high: 100 };
        let g = r.grid(5);
        assert_eq!(g.len(), 5);
        assert_eq!(g[0], ParamValue::Int(0));
        assert_eq!(g[4], ParamValue::Int(100));
    }

    #[test]
    fn builder_rejects_bad_inputs() {
        assert!(HyperParamSpace::builder().build().is_err());
        assert!(HyperParamSpace::builder().continuous("a", 1.0, 0.0).build().is_err());
        assert!(HyperParamSpace::builder().continuous_log("a", 0.0, 1.0).build().is_err());
        assert!(HyperParamSpace::builder()
            .continuous("a", 0.0, 1.0)
            .integer("a", 1, 2)
            .build()
            .is_err());
        assert!(HyperParamSpace::builder().categorical("c", Vec::<String>::new()).build().is_err());
    }

    #[test]
    fn configuration_display_is_deterministic() {
        let mut c = Configuration::new();
        c.set("b", ParamValue::Int(2));
        c.set("a", ParamValue::Float(0.5));
        assert_eq!(c.to_string(), "{a=0.5, b=2}");
    }

    #[test]
    fn stable_hash_distinguishes_configs() {
        let mut a = Configuration::new();
        a.set("x", ParamValue::Float(0.5));
        let mut b = Configuration::new();
        b.set("x", ParamValue::Float(0.5000001));
        let mut c = Configuration::new();
        c.set("x", ParamValue::Int(1));
        assert_eq!(a.stable_hash(), a.clone().stable_hash());
        assert_ne!(a.stable_hash(), b.stable_hash());
        assert_ne!(a.stable_hash(), c.stable_hash());
        assert_ne!(Configuration::new().stable_hash(), a.stable_hash());
    }

    #[test]
    fn same_seed_same_samples() {
        let s = space();
        let a: Vec<_> =
            (0..10).scan(StdRng::seed_from_u64(9), |rng, _| Some(s.sample(rng))).collect();
        let b: Vec<_> =
            (0..10).scan(StdRng::seed_from_u64(9), |rng, _| Some(s.sample(rng))).collect();
        assert_eq!(a, b);
    }
}
