//! Typed identifiers.
//!
//! Newtypes keep job, machine, configuration, and experiment identifiers from
//! being confused with each other (C-NEWTYPE). All of them are cheap `Copy`
//! wrappers around `u64` and order by their numeric value, which the Job
//! Manager relies on for FIFO tie-breaking.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Creates an identifier from its raw numeric value.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifies one training job (one hyperparameter configuration being
    /// trained). The paper uses "job" and "configuration" interchangeably in
    /// the scheduling sections; we keep distinct [`JobId`] and [`ConfigId`]
    /// because a generator may in principle re-issue a configuration as a new
    /// job.
    JobId,
    "job-"
);

define_id!(
    /// Identifies one machine (slot) managed by the Resource Manager. A slot
    /// may be a physical machine or a GPU; the scheduler does not care.
    MachineId,
    "machine-"
);

define_id!(
    /// Identifies one point in hyperparameter space produced by a
    /// Hyperparameter Generator.
    ConfigId,
    "config-"
);

define_id!(
    /// Identifies one experiment run (one invocation of the Experiment
    /// Runner).
    ExperimentId,
    "experiment-"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_raw_values() {
        let id = JobId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(u64::from(id), 42);
        assert_eq!(JobId::from(42), id);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(JobId::new(7).to_string(), "job-7");
        assert_eq!(MachineId::new(3).to_string(), "machine-3");
        assert_eq!(ConfigId::new(0).to_string(), "config-0");
        assert_eq!(ExperimentId::new(1).to_string(), "experiment-1");
    }

    #[test]
    fn ids_order_numerically() {
        assert!(JobId::new(2) < JobId::new(10));
        let mut v = vec![MachineId::new(3), MachineId::new(1), MachineId::new(2)];
        v.sort();
        assert_eq!(v, vec![MachineId::new(1), MachineId::new(2), MachineId::new(3)]);
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        // Compile-time property: JobId and MachineId are distinct types.
        fn takes_job(_: JobId) {}
        takes_job(JobId::new(1));
    }
}
