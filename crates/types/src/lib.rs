//! Shared vocabulary types for the HyperDrive hyperparameter-exploration
//! framework.
//!
//! This crate defines the common language spoken by every other crate in the
//! workspace: typed identifiers, virtual time, performance metrics and their
//! normalization, learning curves, hyperparameter spaces and concrete
//! configurations, learning-domain knowledge (kill thresholds, solved
//! conditions), error types, and a small statistics toolbox.
//!
//! Nothing in this crate knows about scheduling policies, training jobs, or
//! simulation — those live upstream. Keeping the vocabulary in one dependency-
//! free crate lets the curve-prediction substrate, the framework, and the
//! simulator agree on data shapes without depending on each other.
//!
//! # Example
//!
//! ```
//! use hyperdrive_types::{LearningCurve, MetricKind, SimTime};
//!
//! let mut curve = LearningCurve::new(MetricKind::Accuracy);
//! curve.push(1, SimTime::from_secs(60.0), 0.12);
//! curve.push(2, SimTime::from_secs(121.0), 0.19);
//! assert_eq!(curve.len(), 2);
//! assert!(curve.best().unwrap() > 0.18);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod curve;
mod domain;
mod error;
mod hyperparam;
mod id;
mod metric;
pub mod stats;
mod time;

pub use curve::{CurvePoint, LearningCurve};
pub use domain::{DomainKnowledge, LearningDomain, SolvedCondition};
pub use error::{Error, Result};
pub use hyperparam::{Configuration, HyperParamSpace, ParamRange, ParamValue, SpaceBuilder};
pub use id::{ConfigId, ExperimentId, JobId, MachineId};
pub use metric::{MetricKind, MetricNormalizer};
pub use time::SimTime;
