//! Learning curves: the per-job history of `(epoch, time, performance)`
//! observations that every scheduling decision in the paper consumes.

use crate::metric::MetricKind;
use crate::time::SimTime;

/// One observation on a learning curve: the model's task performance measured
/// at the end of a training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// 1-based epoch index at which the measurement was taken.
    pub epoch: u32,
    /// Experiment time of the measurement.
    pub time: SimTime,
    /// Measured (normalized) task performance, higher is better.
    pub value: f64,
}

/// The observed performance history of one training job.
///
/// Values are expected to be normalized to `[0, 1]` by the caller (see
/// [`crate::MetricNormalizer`]); the curve itself does not enforce bounds
/// because intermediate raw curves are also represented with this type.
///
/// # Example
///
/// ```
/// use hyperdrive_types::{LearningCurve, MetricKind, SimTime};
///
/// let mut curve = LearningCurve::new(MetricKind::Accuracy);
/// curve.push(1, SimTime::from_secs(60.0), 0.10);
/// curve.push(2, SimTime::from_secs(120.0), 0.35);
/// curve.push(3, SimTime::from_secs(180.0), 0.50);
/// assert_eq!(curve.best(), Some(0.50));
/// assert_eq!(curve.last_epoch(), Some(3));
/// let avg = curve.mean_epoch_duration().unwrap();
/// assert!((avg.as_secs() - 60.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LearningCurve {
    kind: MetricKind,
    points: Vec<CurvePoint>,
}

impl LearningCurve {
    /// Creates an empty curve for the given metric kind.
    pub fn new(kind: MetricKind) -> Self {
        LearningCurve { kind, points: Vec::new() }
    }

    /// Creates an empty curve with room for `capacity` observations, so a
    /// curve filled up to its job's epoch cap never reallocates (the
    /// engine's zero-alloc steady-state contract).
    pub fn with_capacity(kind: MetricKind, capacity: usize) -> Self {
        LearningCurve { kind, points: Vec::with_capacity(capacity) }
    }

    /// Creates a curve from pre-existing points.
    ///
    /// # Panics
    ///
    /// Panics if epochs are not strictly increasing.
    pub fn from_points(kind: MetricKind, points: Vec<CurvePoint>) -> Self {
        for w in points.windows(2) {
            assert!(
                w[0].epoch < w[1].epoch,
                "curve epochs must be strictly increasing: {} then {}",
                w[0].epoch,
                w[1].epoch
            );
        }
        LearningCurve { kind, points }
    }

    /// The metric kind this curve records.
    pub fn kind(&self) -> MetricKind {
        self.kind
    }

    /// Appends an observation.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` does not exceed the last recorded epoch, or if
    /// `value` is NaN.
    pub fn push(&mut self, epoch: u32, time: SimTime, value: f64) {
        assert!(!value.is_nan(), "curve values cannot be NaN");
        if let Some(last) = self.points.last() {
            assert!(
                epoch > last.epoch,
                "epoch {epoch} must exceed last recorded epoch {}",
                last.epoch
            );
        }
        self.points.push(CurvePoint { epoch, time, value });
    }

    /// All observations in epoch order.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// Discards every observation past `keep_epoch`, keeping the curve
    /// consistent with a job rolled back to that epoch (crash recovery
    /// re-runs the lost epochs and re-records them). `keep_epoch = 0`
    /// empties the curve.
    pub fn truncate_to_epoch(&mut self, keep_epoch: u32) {
        self.points.retain(|p| p.epoch <= keep_epoch);
    }

    /// The performance values, in epoch order.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|p| p.value)
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no observation has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Best (maximum) performance seen so far.
    pub fn best(&self) -> Option<f64> {
        self.values().fold(None, |acc, v| match acc {
            Some(best) if best >= v => Some(best),
            _ => Some(v),
        })
    }

    /// Most recent performance value.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|p| p.value)
    }

    /// Most recent epoch index.
    pub fn last_epoch(&self) -> Option<u32> {
        self.points.last().map(|p| p.epoch)
    }

    /// Time of the most recent observation.
    pub fn last_time(&self) -> Option<SimTime> {
        self.points.last().map(|p| p.time)
    }

    /// Measured average epoch duration (`Epoch_i` in §3.1.1), derived from
    /// observation timestamps. Needs at least two observations; with exactly
    /// one observation whose epoch index is 1, its timestamp is used as a
    /// single-epoch estimate.
    pub fn mean_epoch_duration(&self) -> Option<SimTime> {
        match self.points.len() {
            0 => None,
            1 => {
                let p = self.points[0];
                if p.epoch >= 1 && p.time > SimTime::ZERO {
                    Some(SimTime::from_secs(p.time.as_secs() / f64::from(p.epoch)))
                } else {
                    None
                }
            }
            _ => {
                let first = self.points[0];
                let last = self.points[self.points.len() - 1];
                let epochs = f64::from(last.epoch - first.epoch);
                if epochs <= 0.0 {
                    return None;
                }
                let span = (last.time - first.time).as_secs();
                if span <= 0.0 {
                    return None;
                }
                Some(SimTime::from_secs(span / epochs))
            }
        }
    }

    /// Mean of the most recent `window` values, or of all values if fewer
    /// exist. Used by RL solved conditions ("average reward of 200 over 100
    /// consecutive trials").
    pub fn trailing_mean(&self, window: usize) -> Option<f64> {
        if self.points.is_empty() || window == 0 {
            return None;
        }
        let start = self.points.len().saturating_sub(window);
        let tail = &self.points[start..];
        Some(tail.iter().map(|p| p.value).sum::<f64>() / tail.len() as f64)
    }

    /// Returns a prefix of the curve containing observations up to and
    /// including `epoch`.
    pub fn prefix(&self, epoch: u32) -> LearningCurve {
        LearningCurve {
            kind: self.kind,
            points: self.points.iter().copied().filter(|p| p.epoch <= epoch).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LearningCurve {
        let mut c = LearningCurve::new(MetricKind::Accuracy);
        c.push(1, SimTime::from_secs(60.0), 0.10);
        c.push(2, SimTime::from_secs(120.0), 0.30);
        c.push(3, SimTime::from_secs(180.0), 0.25);
        c.push(4, SimTime::from_secs(240.0), 0.45);
        c
    }

    #[test]
    fn best_tracks_maximum_not_last() {
        let c = sample();
        assert_eq!(c.best(), Some(0.45));
        assert_eq!(c.last_value(), Some(0.45));
        let mut c2 = sample();
        c2.push(5, SimTime::from_secs(300.0), 0.20);
        assert_eq!(c2.best(), Some(0.45));
        assert_eq!(c2.last_value(), Some(0.20));
    }

    #[test]
    fn mean_epoch_duration_from_span() {
        let c = sample();
        let d = c.mean_epoch_duration().unwrap();
        assert!((d.as_secs() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn mean_epoch_duration_single_point() {
        let mut c = LearningCurve::new(MetricKind::Accuracy);
        c.push(2, SimTime::from_secs(100.0), 0.2);
        let d = c.mean_epoch_duration().unwrap();
        assert!((d.as_secs() - 50.0).abs() < 1e-9);
        assert!(LearningCurve::new(MetricKind::Accuracy).mean_epoch_duration().is_none());
    }

    #[test]
    fn trailing_mean_windows() {
        let c = sample();
        let m2 = c.trailing_mean(2).unwrap();
        assert!((m2 - 0.35).abs() < 1e-12);
        let all = c.trailing_mean(100).unwrap();
        assert!((all - 0.275).abs() < 1e-12);
        assert!(c.trailing_mean(0).is_none());
    }

    #[test]
    fn prefix_cuts_at_epoch() {
        let c = sample();
        let p = c.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.last_epoch(), Some(2));
        assert_eq!(c.prefix(0).len(), 0);
        assert_eq!(c.prefix(100).len(), 4);
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn non_increasing_epochs_panic() {
        let mut c = sample();
        c.push(4, SimTime::from_secs(999.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_values_panic() {
        let mut c = LearningCurve::new(MetricKind::Reward);
        c.push(1, SimTime::ZERO, f64::NAN);
    }

    #[test]
    fn from_points_validates_order() {
        let pts = vec![
            CurvePoint { epoch: 1, time: SimTime::from_secs(1.0), value: 0.1 },
            CurvePoint { epoch: 3, time: SimTime::from_secs(3.0), value: 0.2 },
        ];
        let c = LearningCurve::from_points(MetricKind::Accuracy, pts);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn truncate_to_epoch_rolls_back_and_allows_rerecording() {
        let mut c = sample();
        let before = c.len();
        c.truncate_to_epoch(2);
        assert!(c.len() < before);
        assert_eq!(c.last_epoch(), Some(2));
        // Re-running the lost epoch records cleanly.
        c.push(3, SimTime::from_secs(500.0), 0.9);
        assert_eq!(c.last_epoch(), Some(3));
        c.truncate_to_epoch(0);
        assert!(c.is_empty());
    }
}
