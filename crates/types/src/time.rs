//! Virtual time.
//!
//! Both the discrete-event simulator and the live executor measure experiment
//! progress in seconds since experiment start. [`SimTime`] is a newtype over
//! `f64` seconds with a total order (NaN is rejected at construction), so it
//! can key event queues and be compared safely.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (virtual or scaled-real) time, in seconds since experiment
/// start.
///
/// `SimTime` is totally ordered: constructing one from a NaN value panics, so
/// every live value is comparable. Negative times are allowed as
/// intermediate values of subtraction but most APIs expect non-negative time.
///
/// # Example
///
/// ```
/// use hyperdrive_types::SimTime;
///
/// let t = SimTime::from_secs(90.0) + SimTime::from_mins(1.0);
/// assert_eq!(t.as_secs(), 150.0);
/// assert_eq!(t.as_mins(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero: the start of the experiment.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN.
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        SimTime(secs)
    }

    /// Creates a time from minutes.
    ///
    /// # Panics
    ///
    /// Panics if `mins` is NaN.
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// Creates a time from hours.
    ///
    /// # Panics
    ///
    /// Panics if `hours` is NaN.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Returns the time in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the time in minutes.
    pub fn as_mins(self) -> f64 {
        self.0 / 60.0
    }

    /// Returns the time in hours.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Returns the larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: returns zero instead of a negative duration.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }

    /// True if this time is finite (not +/- infinity).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Constructors reject NaN, so partial_cmp never fails for live values.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 3600.0 {
            write!(f, "{:.2}h", self.as_hours())
        } else if self.0.abs() >= 60.0 {
            write!(f, "{:.2}min", self.as_mins())
        } else {
            write!(f, "{:.2}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        let t = SimTime::from_hours(1.5);
        assert!((t.as_mins() - 90.0).abs() < 1e-12);
        assert!((t.as_secs() - 5400.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_order() {
        let a = SimTime::from_secs(10.0);
        let b = SimTime::from_secs(4.0);
        assert_eq!((a + b).as_secs(), 14.0);
        assert_eq!((a - b).as_secs(), 6.0);
        assert!(a > b);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let a = SimTime::from_secs(3.0);
        let b = SimTime::from_secs(5.0);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a).as_secs(), 2.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_secs(12.0).to_string(), "12.00s");
        assert_eq!(SimTime::from_secs(120.0).to_string(), "2.00min");
        assert_eq!(SimTime::from_hours(2.0).to_string(), "2.00h");
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += SimTime::from_secs(1.5);
        }
        assert!((t.as_secs() - 15.0).abs() < 1e-12);
    }
}
