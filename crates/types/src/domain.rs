//! Learning domains and model-owner domain knowledge.
//!
//! §2.1 of the paper argues that cheap early termination of poor
//! configurations comes from domain knowledge the model owner already has:
//! classification tasks have a known "random" accuracy (10% for CIFAR-10, so
//! the kill threshold is set slightly above at 15%), RL environments have a
//! known non-learning reward (-100 for LunarLander), and RL tasks often have
//! explicit "solved" conditions (mean reward 200 over 100 consecutive
//! trials). [`DomainKnowledge`] packages those inputs for scheduling
//! policies.

use crate::curve::LearningCurve;
use crate::metric::{MetricKind, MetricNormalizer};

/// The learning domain a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LearningDomain {
    /// Supervised learning (e.g. CIFAR-10 image classification); metric is
    /// validation accuracy, evaluated every epoch.
    #[default]
    Supervised,
    /// Reinforcement learning (e.g. LunarLander); metric is episode reward,
    /// evaluated every episode trial.
    Reinforcement,
    /// Unsupervised or other domains (supported by the framework; no
    /// built-in workload generator in this repository).
    Unsupervised,
}

/// An explicit task-completion condition, as used by RL environments.
///
/// LunarLander is "solved" when the mean reward over the last 100 trials
/// reaches 200 (normalized: 0.875 under the paper's min-max scaling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolvedCondition {
    /// Normalized performance that must be sustained.
    pub target: f64,
    /// Number of consecutive trailing observations averaged.
    pub window: usize,
}

impl SolvedCondition {
    /// Creates a solved condition on a trailing mean.
    pub fn trailing_mean(target: f64, window: usize) -> Self {
        SolvedCondition { target, window }
    }

    /// Checks whether a curve satisfies this condition. Requires at least
    /// `window` observations so that a single lucky early spike does not
    /// count as solved.
    pub fn is_met(&self, curve: &LearningCurve) -> bool {
        if curve.len() < self.window {
            return false;
        }
        curve.trailing_mean(self.window).is_some_and(|m| m >= self.target)
    }
}

/// Model-owner inputs that scheduling policies use to identify poor
/// configurations early and to decide when a job has reached its goal.
///
/// All performance values here are *normalized* (`[0, 1]`; see
/// [`MetricNormalizer`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DomainKnowledge {
    /// The learning domain.
    pub domain: LearningDomain,
    /// The metric kind jobs in this domain report.
    pub metric: MetricKind,
    /// Normalizer from raw metric values to `[0, 1]`.
    pub normalizer: MetricNormalizer,
    /// Known non-learning ("random") performance, normalized. CIFAR-10:
    /// 0.10; LunarLander: the crash reward -100 → 0.5.
    pub random_performance: f64,
    /// Kill threshold: jobs whose performance has not escaped this value
    /// after the warmup period are poor and terminated (§5.3 sets 0.15 for
    /// CIFAR-10 and raw -100 for LunarLander).
    pub kill_threshold: f64,
    /// Number of evaluations to wait before applying the kill threshold.
    pub kill_warmup_evals: u32,
    /// Optional explicit solved condition (RL).
    pub solved: Option<SolvedCondition>,
}

impl DomainKnowledge {
    /// Domain knowledge for the paper's CIFAR-10 supervised workload:
    /// random accuracy 10%, kill threshold 15%, no solved condition (the
    /// experiment target is supplied separately).
    pub fn cifar10() -> Self {
        DomainKnowledge {
            domain: LearningDomain::Supervised,
            metric: MetricKind::Accuracy,
            normalizer: MetricNormalizer::identity(),
            random_performance: 0.10,
            kill_threshold: 0.15,
            kill_warmup_evals: 3,
            solved: None,
        }
    }

    /// Domain knowledge for the paper's LunarLander RL workload: rewards
    /// min-max scaled from `[-500, 300]`, non-learning reward -100
    /// (normalized 0.5), kill threshold at that value, solved when the mean
    /// normalized reward over 100 consecutive trials reaches 200 (0.875).
    pub fn lunar_lander() -> Self {
        let normalizer = MetricNormalizer::lunar_lander();
        DomainKnowledge {
            domain: LearningDomain::Reinforcement,
            metric: MetricKind::Reward,
            normalizer,
            random_performance: normalizer.normalize(-100.0),
            kill_threshold: normalizer.normalize(-100.0),
            kill_warmup_evals: 3,
            solved: Some(SolvedCondition::trailing_mean(normalizer.normalize(200.0), 100)),
        }
    }

    /// True if a curve is still stuck at or below the kill threshold after
    /// the warmup period — the §2.1 "not learning" test.
    pub fn is_poor(&self, curve: &LearningCurve, evals_seen: u32) -> bool {
        if evals_seen < self.kill_warmup_evals {
            return false;
        }
        curve.best().is_some_and(|b| b <= self.kill_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn curve_with(values: &[f64]) -> LearningCurve {
        let mut c = LearningCurve::new(MetricKind::Accuracy);
        for (i, v) in values.iter().enumerate() {
            c.push(i as u32 + 1, SimTime::from_secs(60.0 * (i as f64 + 1.0)), *v);
        }
        c
    }

    #[test]
    fn cifar10_constants_match_paper() {
        let dk = DomainKnowledge::cifar10();
        assert_eq!(dk.random_performance, 0.10);
        assert_eq!(dk.kill_threshold, 0.15);
        assert_eq!(dk.domain, LearningDomain::Supervised);
    }

    #[test]
    fn lunar_constants_match_paper() {
        let dk = DomainKnowledge::lunar_lander();
        assert!((dk.kill_threshold - 0.5).abs() < 1e-12);
        let solved = dk.solved.unwrap();
        assert!((solved.target - 0.875).abs() < 1e-12);
        assert_eq!(solved.window, 100);
    }

    #[test]
    fn poor_detection_respects_warmup() {
        let dk = DomainKnowledge::cifar10();
        let stuck = curve_with(&[0.10, 0.11, 0.09, 0.10]);
        assert!(!dk.is_poor(&stuck, 2), "within warmup, never poor");
        assert!(dk.is_poor(&stuck, 4), "past warmup and below threshold");
    }

    #[test]
    fn learning_job_is_not_poor() {
        let dk = DomainKnowledge::cifar10();
        let learning = curve_with(&[0.10, 0.18, 0.25]);
        assert!(!dk.is_poor(&learning, 10));
    }

    #[test]
    fn solved_condition_requires_full_window() {
        let cond = SolvedCondition::trailing_mean(0.8, 3);
        let short = curve_with(&[0.9, 0.9]);
        assert!(!cond.is_met(&short), "not enough observations");
        let ok = curve_with(&[0.1, 0.85, 0.82, 0.9]);
        assert!(cond.is_met(&ok));
        let dip = curve_with(&[0.9, 0.9, 0.9, 0.1]);
        assert!(!cond.is_met(&dip), "trailing window includes the dip");
    }
}
