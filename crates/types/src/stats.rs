//! Small statistics toolbox used across the workspace.
//!
//! Keeping these few routines in-house avoids extra dependencies: the only
//! distribution machinery HyperDrive needs is the standard normal CDF (for
//! posterior-predictive probabilities), Gaussian sampling (Box–Muller), and
//! order statistics (percentiles, box-plot summaries).

use rand::Rng;

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population variance. Returns `None` for an empty slice.
pub fn variance(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    Some(values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64)
}

/// Population standard deviation. Returns `None` for an empty slice.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    variance(values).map(f64::sqrt)
}

/// Linear-interpolation percentile, `q` in `[0, 1]`. Returns `None` for an
/// empty slice or a `q` outside `[0, 1]`.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("stats inputs must not be NaN"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median (50th percentile).
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 0.5)
}

/// Five-number summary for box plots: min, first quartile, median, third
/// quartile, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxPlot {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl BoxPlot {
    /// Computes the summary. Returns `None` for an empty slice.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        Some(BoxPlot {
            min: percentile(values, 0.0)?,
            q1: percentile(values, 0.25)?,
            median: percentile(values, 0.5)?,
            q3: percentile(values, 0.75)?,
            max: percentile(values, 1.0)?,
        })
    }

    /// The interquartile range `q3 - q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// The full spread `max - min` (the paper reports "difference between
    /// minimum and maximum training times").
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// Empirical CDF: returns `(sorted value, cumulative fraction)` pairs.
pub fn ecdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("stats inputs must not be NaN"));
    let n = sorted.len() as f64;
    sorted.into_iter().enumerate().map(|(i, v)| (v, (i + 1) as f64 / n)).collect()
}

/// Error function via the Abramowitz & Stegun 7.1.26 rational approximation
/// (max absolute error 1.5e-7, ample for posterior probabilities).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Draws one sample from `N(mean, std^2)` by the Box–Muller transform.
///
/// # Panics
///
/// Panics if `std` is negative.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    assert!(std >= 0.0, "standard deviation must be non-negative");
    if std == 0.0 {
        return mean;
    }
    // Box–Muller: u1 in (0, 1] to keep ln finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std * z
}

/// Draws one sample from `LogNormal(mu, sigma)` (parameters of the
/// underlying normal). Used by the suspend-latency and snapshot-size models.
pub fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    sample_normal(rng, mu, sigma).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_variance_basics() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&v), Some(2.5));
        assert_eq!(variance(&v), Some(1.25));
        assert!((std_dev(&v).unwrap() - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 1.0), Some(40.0));
        assert_eq!(median(&v), Some(25.0));
        assert_eq!(percentile(&v, 0.25), Some(17.5));
        assert_eq!(percentile(&v, 1.1), None);
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn box_plot_summary() {
        let v = [1.0, 2.0, 3.0, 4.0, 100.0];
        let b = BoxPlot::from_values(&v).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.max, 100.0);
        assert_eq!(b.range(), 99.0);
        assert!(b.iqr() > 0.0);
        assert!(BoxPlot::from_values(&[]).is_none());
    }

    #[test]
    fn ecdf_reaches_one() {
        let pts = ecdf(&[3.0, 1.0, 2.0]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (1.0, 1.0 / 3.0));
        assert_eq!(pts[2], (3.0, 1.0));
    }

    #[test]
    fn erf_matches_known_values() {
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_matches_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..20_000).map(|_| sample_normal(&mut rng, 3.0, 2.0)).collect();
        let m = mean(&samples).unwrap();
        let s = std_dev(&samples).unwrap();
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
        assert!((s - 2.0).abs() < 0.05, "std {s}");
    }

    #[test]
    fn zero_std_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(sample_normal(&mut rng, 1.5, 0.0), 1.5);
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            assert!(sample_lognormal(&mut rng, -1.0, 1.0) > 0.0);
        }
    }
}
