//! Property tests for the shared vocabulary types.

use proptest::prelude::*;

use hyperdrive_types::stats::{self, BoxPlot};
use hyperdrive_types::{
    HyperParamSpace, LearningCurve, MetricKind, MetricNormalizer, SimTime, SolvedCondition,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Min-max normalization maps into [0, 1] and round-trips in-range
    /// values.
    #[test]
    fn normalizer_round_trips(min in -1e6f64..1e6, width in 1e-3f64..1e6, raw in -2e6f64..2e6) {
        let norm = MetricNormalizer::new(min, min + width).unwrap();
        let n = norm.normalize(raw);
        prop_assert!((0.0..=1.0).contains(&n));
        if raw >= min && raw <= min + width {
            let back = norm.denormalize(n);
            prop_assert!((back - raw).abs() < 1e-6 * width.max(1.0), "{back} vs {raw}");
        }
    }

    /// Percentiles are order statistics: bounded by min/max and monotone
    /// in q.
    #[test]
    fn percentiles_are_monotone_and_bounded(
        values in proptest::collection::vec(-1e9f64..1e9, 1..200),
    ) {
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let p = stats::percentile(&values, q).unwrap();
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
            prop_assert!(p >= last - 1e-9, "monotone in q");
            last = p;
        }
        let b = BoxPlot::from_values(&values).unwrap();
        prop_assert!(b.min <= b.q1 && b.q1 <= b.median && b.median <= b.q3 && b.q3 <= b.max);
        prop_assert!(b.iqr() >= 0.0 && b.range() >= 0.0);
    }

    /// The empirical CDF ends at exactly 1 and is non-decreasing.
    #[test]
    fn ecdf_is_a_cdf(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let cdf = stats::ecdf(&values);
        prop_assert_eq!(cdf.len(), values.len());
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    /// SimTime ordering agrees with the underlying seconds.
    #[test]
    fn simtime_order_is_numeric(a in -1e9f64..1e9, b in -1e9f64..1e9) {
        let (ta, tb) = (SimTime::from_secs(a), SimTime::from_secs(b));
        prop_assert_eq!(ta < tb, a < b);
        prop_assert_eq!(ta.max(tb).as_secs(), a.max(b));
        prop_assert!(ta.saturating_sub(tb).as_secs() >= 0.0);
    }

    /// Curves report consistent derived statistics for any monotone-epoch
    /// history.
    #[test]
    fn curve_statistics_are_consistent(
        values in proptest::collection::vec(0.0f64..1.0, 1..60),
        epoch_secs in 1.0f64..1e4,
    ) {
        let mut curve = LearningCurve::new(MetricKind::Accuracy);
        for (i, v) in values.iter().enumerate() {
            curve.push(i as u32 + 1, SimTime::from_secs(epoch_secs * (i as f64 + 1.0)), *v);
        }
        let best = curve.best().unwrap();
        prop_assert!(values.iter().all(|v| *v <= best));
        prop_assert!(values.contains(&best));
        if let Some(d) = curve.mean_epoch_duration() {
            prop_assert!((d.as_secs() - epoch_secs).abs() < 1e-6 * epoch_secs);
        }
        let solved = SolvedCondition::trailing_mean(best + 0.1, 1);
        prop_assert!(!solved.is_met(&curve), "cannot exceed best");
    }

    /// Every sampled configuration stays within its declared ranges.
    #[test]
    fn samples_stay_in_ranges(seed in 0u64..10_000) {
        let space = HyperParamSpace::builder()
            .continuous("a", -5.0, 5.0)
            .continuous_log("b", 1e-8, 1e2)
            .integer("c", -10, 10)
            .categorical("d", ["x", "y"])
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let config = space.sample(&mut rng);
        let a = config.get_f64("a").unwrap();
        prop_assert!((-5.0..=5.0).contains(&a));
        let b = config.get_f64("b").unwrap();
        prop_assert!((1e-8..=1e2 + 1e-9).contains(&b));
        let c = config.get_f64("c").unwrap();
        prop_assert!((-10.0..=10.0).contains(&c));
    }
}
