//! Property tests across all four synthetic workloads: every profile any
//! configuration can produce must be well-formed, deterministic, and
//! noise-stable in outcome.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use hyperdrive_workload::{CifarWorkload, ImagenetWorkload, LstmWorkload, LunarWorkload, Workload};

fn workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(CifarWorkload::new().with_max_epochs(30)),
        Box::new(LunarWorkload::new().with_max_blocks(30)),
        Box::new(LstmWorkload::new().with_max_epochs(20)),
        Box::new(ImagenetWorkload::new().with_max_epochs(15)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Profiles are well-formed for arbitrary sampled configurations and
    /// seeds: correct length, positive durations, normalized finite values.
    #[test]
    fn profiles_are_well_formed(config_seed in 0u64..10_000, noise_seed in 0u64..10_000) {
        for w in workloads() {
            let mut rng = StdRng::seed_from_u64(config_seed);
            let config = w.space().sample(&mut rng);
            let profile = w.profile(&config, noise_seed);
            prop_assert_eq!(profile.max_epochs(), w.max_epochs(), "{}", w.name());
            for e in 1..=profile.max_epochs() {
                let d = profile.epoch_duration(e).as_secs();
                prop_assert!(d > 0.0 && d.is_finite(), "{}: duration {d}", w.name());
                let v = profile.value_at(e);
                prop_assert!((0.0..=1.0).contains(&v), "{}: value {v}", w.name());
            }
            if let Some(secondary) = profile.secondary_values() {
                prop_assert!(secondary.iter().all(|s| (0.0..=1.0).contains(s)));
            }
        }
    }

    /// Determinism: the same (config, seed) pair always yields the same
    /// profile.
    #[test]
    fn profiles_are_deterministic(config_seed in 0u64..10_000, noise_seed in 0u64..10_000) {
        for w in workloads() {
            let mut rng = StdRng::seed_from_u64(config_seed);
            let config = w.space().sample(&mut rng);
            prop_assert_eq!(
                w.profile(&config, noise_seed),
                w.profile(&config, noise_seed),
                "{}", w.name()
            );
        }
    }

    /// Noise stability: §6.1's run-to-run non-determinism perturbs
    /// performance mildly; it never flips a configuration between "never
    /// learns" and "learns well".
    #[test]
    fn noise_does_not_flip_outcomes(config_seed in 0u64..5_000) {
        for w in workloads() {
            let mut rng = StdRng::seed_from_u64(config_seed);
            let config = w.space().sample(&mut rng);
            let a = w.profile(&config, 1).final_value();
            let b = w.profile(&config, 2).final_value();
            prop_assert!(
                (a - b).abs() < 0.12,
                "{}: outcome flipped across noise seeds: {a} vs {b}",
                w.name()
            );
        }
    }

    /// The workload's declared domain knowledge is internally consistent
    /// with its target.
    #[test]
    fn domain_knowledge_is_consistent(_x in 0u8..1) {
        for w in workloads() {
            let dk = w.domain_knowledge();
            prop_assert!((0.0..=1.0).contains(&dk.kill_threshold), "{}", w.name());
            prop_assert!((0.0..=1.0).contains(&dk.random_performance));
            prop_assert!(
                w.default_target() > dk.kill_threshold,
                "{}: target must exceed the kill threshold",
                w.name()
            );
            prop_assert!(w.eval_boundary() >= 1);
            prop_assert!(w.eval_boundary() <= w.max_epochs().max(1));
        }
    }
}
