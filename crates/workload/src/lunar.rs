//! Synthetic LunarLander reinforcement-learning workload.
//!
//! Stands in for the Keras/Theano agent of §6.3. Time is discretized into
//! *blocks* of 100 episode trials: one "epoch" of this workload is one
//! block, and the reported value is the mean reward over the block's 100
//! episodes — which makes the environment's solved condition ("average
//! reward of 200 over 100 consecutive trials") exactly "one block's value
//! reaches 200".
//!
//! The generator reproduces the population behaviour of Fig. 8:
//!
//! * rewards range roughly over `[-500, 300]` and are min-max normalized
//!   (Eq. 4 with `r_min = -500`, `r_max = 300`);
//! * more than half of configurations never learn, hovering near the
//!   crash reward of -100;
//! * a distinctive failure mode is the **learning-crash**: a configuration
//!   learns for a while, then its reward collapses to ≈-100 and stays
//!   there — precisely the case where best-ever-performance heuristics
//!   (Bandit) are fooled but curve prediction is not;
//! * solvers climb to a sustained reward above 200.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hyperdrive_types::{
    stats, Configuration, DomainKnowledge, HyperParamSpace, SimTime, SolvedCondition,
};

use crate::profile::JobProfile;
use crate::spaces::lunar_lander_space;
use crate::suspend::SuspendModel;
use crate::Workload;

fn kernel(x: f64, opt: f64, width: f64) -> f64 {
    let z = (x - opt) / width;
    (-0.5 * z * z).exp()
}

/// The behaviour class the response surface assigns to a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LunarBehavior {
    /// Never escapes the crash-reward regime.
    NonLearner,
    /// Learns, then collapses to the crash reward and stays there.
    LearningCrash,
    /// Learns and sustains a high reward.
    Solver,
}

/// Synthetic LunarLander workload (epochs are 100-episode blocks).
///
/// # Example
///
/// ```
/// use hyperdrive_workload::{LunarWorkload, Workload};
/// use rand::SeedableRng;
///
/// let workload = LunarWorkload::new();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let config = workload.space().sample(&mut rng);
/// let profile = workload.profile(&config, 3);
/// assert_eq!(profile.max_epochs(), 200); // 20,000 episode trials
/// ```
#[derive(Debug, Clone)]
pub struct LunarWorkload {
    space: HyperParamSpace,
    max_blocks: u32,
}

impl LunarWorkload {
    /// Creates the workload with the paper's horizon: 20,000 episode trials
    /// = 200 blocks (Fig. 8).
    pub fn new() -> Self {
        LunarWorkload { space: lunar_lander_space(), max_blocks: 200 }
    }

    /// Overrides the number of 100-episode blocks (for fast tests).
    pub fn with_max_blocks(mut self, blocks: u32) -> Self {
        assert!(blocks >= 1);
        self.max_blocks = blocks;
        self
    }

    /// Latent quality in `[0, 1]`. Exposed for calibration tests.
    pub fn quality(&self, config: &Configuration) -> f64 {
        let lr = config.get_f64("learning_rate").unwrap_or(1e-3).log10();
        let gamma = config.get_f64("gamma").unwrap_or(0.99);
        let eps_decay = config.get_f64("epsilon_decay").unwrap_or(0.995);
        let h1 = config.get_f64("hidden1").unwrap_or(64.0);
        let h2 = config.get_f64("hidden2").unwrap_or(64.0);
        let batch = config.get_f64("batch_size").unwrap_or(64.0);
        let target_update = config.get_f64("target_update_freq").unwrap_or(100.0);
        let memory = config.get_f64("memory_size").unwrap_or(50_000.0);
        let soft_tau = config.get_f64("soft_tau").unwrap_or(1e-2).log10();
        let grad_clip = config.get_f64("grad_clip").unwrap_or(1.0).log10();

        let k_lr = kernel(lr, -3.3, 0.9);
        let k_gamma = kernel(gamma, 0.99, 0.02);
        let k_eps = kernel(eps_decay, 0.995, 0.02);
        let k_hidden = kernel((h1 * h2).sqrt().log2(), 6.5, 1.6);
        let k_batch = kernel((batch / 64.0).log2(), 0.0, 1.8);
        let k_target = kernel(target_update.log10(), 2.0, 1.0);
        let k_mem = kernel(memory.log10(), 4.5, 1.0);
        let k_tau = kernel(soft_tau, -2.0, 1.3);
        let k_clip = kernel(grad_clip, 0.0, 1.2);

        (k_lr
            * k_gamma.powf(0.7)
            * k_eps.powf(0.4)
            * k_hidden.powf(0.6)
            * k_batch.powf(0.3)
            * k_target.powf(0.4)
            * k_mem.powf(0.3)
            * k_tau.powf(0.25)
            * k_clip.powf(0.2))
        .clamp(0.0, 1.0)
    }

    /// Behaviour class of a configuration. Intrinsic: derived from the
    /// configuration's stable hash, so training-noise seeds never flip a
    /// solver into a crasher (§6.1's non-determinism perturbs performance
    /// by ~2%, it does not change outcomes).
    pub fn behavior(&self, config: &Configuration) -> LunarBehavior {
        let mut rng = StdRng::seed_from_u64(config.stable_hash() ^ 0x10_1AB5);
        self.classify(self.quality(config), &mut rng).0
    }

    fn classify<R: Rng + ?Sized>(&self, q: f64, rng: &mut R) -> (LunarBehavior, f64) {
        // Low-quality configurations never learn. Mid-quality ones learn
        // but are prone to the learning-crash instability; the crash
        // probability falls with quality.
        if q < 0.08 {
            return (LunarBehavior::NonLearner, q);
        }
        // Solving LunarLander is rare: most learners eventually destabilize
        // (the paper's Fig. 8 shows one or two solvers among 15 configs).
        let p_crash = (0.95 * (1.0 - q).powf(0.5)).clamp(0.05, 0.95);
        if rng.gen::<f64>() < p_crash {
            (LunarBehavior::LearningCrash, q)
        } else {
            (LunarBehavior::Solver, q)
        }
    }
}

impl Default for LunarWorkload {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for LunarWorkload {
    fn name(&self) -> &str {
        "lunarlander"
    }

    fn domain_knowledge(&self) -> DomainKnowledge {
        // Observations are 100-episode block means, so the environment's
        // "average reward of 200 over 100 consecutive trials" is a window
        // of one block.
        let mut dk = DomainKnowledge::lunar_lander();
        dk.solved = Some(SolvedCondition::trailing_mean(dk.normalizer.normalize(200.0), 1));
        dk
    }

    fn space(&self) -> &HyperParamSpace {
        &self.space
    }

    fn max_epochs(&self) -> u32 {
        self.max_blocks
    }

    fn eval_boundary(&self) -> u32 {
        20 // §5.3: b = 2,000 iterations = 20 blocks of 100 episodes.
    }

    fn default_target(&self) -> f64 {
        // Solved reward of 200, normalized.
        DomainKnowledge::lunar_lander().normalizer.normalize(200.0)
    }

    fn suspend_model(&self) -> SuspendModel {
        SuspendModel::criu_process()
    }

    fn profile(&self, config: &Configuration, seed: u64) -> JobProfile {
        // Configuration-intrinsic randomness (behaviour class, curve shape,
        // crash point, durations) comes from the config's stable hash;
        // only run-to-run training noise comes from `seed`.
        let mut rng = StdRng::seed_from_u64(config.stable_hash() ^ 0x10_1AB5);
        let mut noise_rng = StdRng::seed_from_u64(seed ^ 0x10_1AB5);
        let norm = DomainKnowledge::lunar_lander().normalizer;
        let q = self.quality(config);
        let (behavior, _) = self.classify(q, &mut rng);

        let h1 = config.get_f64("hidden1").unwrap_or(64.0);
        let h2 = config.get_f64("hidden2").unwrap_or(64.0);
        let batch = config.get_f64("batch_size").unwrap_or(64.0);
        // CPU training on c4.xlarge: block duration scales with network
        // size and batch count.
        let size_factor = ((h1 * h2).sqrt() / 64.0).powf(0.25) * (64.0 / batch).powf(0.1);
        let config_factor = stats::sample_lognormal(&mut rng, 0.0, 0.15).clamp(0.5, 2.0);
        let base_duration = 45.0 * size_factor.clamp(0.5, 2.0) * config_factor;

        // Raw-reward anchors.
        let start_reward = rng.gen_range(-320.0..-180.0);
        let crash_reward = -100.0;
        let peak = match behavior {
            LunarBehavior::NonLearner => crash_reward + rng.gen_range(-25.0..10.0),
            LunarBehavior::LearningCrash => {
                // Crashers climb part of the way — sometimes close to the
                // solved reward, but never sustaining it.
                crash_reward + (260.0 * q.powf(0.35)) * rng.gen_range(0.5..1.0)
            }
            LunarBehavior::Solver => 205.0 + 55.0 * q + rng.gen_range(0.0..25.0),
        };
        let tau = (22.0 * (0.4 / q.max(0.02)).powf(0.35)).clamp(6.0, 160.0);
        let crash_block = if behavior == LunarBehavior::LearningCrash {
            // Crashes happen once learning is underway; with a short
            // horizon the crash may land beyond it (the job then looks
            // like a solver within the experiment window).
            let lo = (tau * 0.6).max(5.0);
            let hi = (f64::from(self.max_blocks) * 0.9).max(lo + 1.0);
            rng.gen_range(lo..hi) as u32
        } else {
            u32::MAX
        };

        let noise_raw = 10.0; // episode-level variance averaged over a block
        let rho = 0.45;
        let mut noise = 0.0;
        let mut durations = Vec::with_capacity(self.max_blocks as usize);
        let mut values = Vec::with_capacity(self.max_blocks as usize);
        for b in 1..=self.max_blocks {
            durations.push(SimTime::from_secs(base_duration * noise_rng.gen_range(0.95..1.05)));
            let x = f64::from(b);
            let mean_raw = if b >= crash_block {
                // Post-crash: pinned at the crash reward.
                crash_reward + noise_rng.gen_range(-8.0..4.0)
            } else {
                match behavior {
                    LunarBehavior::NonLearner => {
                        // Drifts from the start reward up to the crash floor.
                        let t = 1.0 - (-(x / 12.0)).exp();
                        start_reward + (peak - start_reward) * t
                    }
                    _ => {
                        let t = 1.0 - (-(x / tau).powf(1.1)).exp();
                        start_reward + (peak - start_reward) * t
                    }
                }
            };
            noise = rho * noise + stats::sample_normal(&mut noise_rng, 0.0, noise_raw);
            let raw = (mean_raw + noise).clamp(-500.0, 300.0);
            values.push(norm.normalize(raw));
        }
        JobProfile::new(durations, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm() -> hyperdrive_types::MetricNormalizer {
        DomainKnowledge::lunar_lander().normalizer
    }

    #[test]
    fn population_matches_fig8_shape() {
        // Fig 8 / §6.3: over 50% of jobs are non-learning (final reward at
        // or below the -100 crash value).
        let w = LunarWorkload::new();
        let mut rng = StdRng::seed_from_u64(99);
        let crash_norm = norm().normalize(-100.0) + 0.02;
        let mut non_learning = 0;
        let mut crashes = 0;
        let mut solvers = 0;
        let n = 300;
        for i in 0..n {
            let c = w.space().sample(&mut rng);
            let p = w.profile(&c, 1000 + i);
            let final_v = p.trailing(5);
            if final_v <= crash_norm {
                non_learning += 1;
            }
            match w.behavior(&c) {
                LunarBehavior::LearningCrash => crashes += 1,
                LunarBehavior::Solver => solvers += 1,
                LunarBehavior::NonLearner => {}
            }
        }
        let frac = non_learning as f64 / n as f64;
        assert!(frac > 0.5, "non-learning fraction {frac} should exceed 50%");
        assert!(crashes > 0, "learning-crash behaviour must occur");
        assert!(solvers > 0, "some configuration must solve the task");
    }

    #[test]
    fn some_solver_reaches_the_solved_condition() {
        let w = LunarWorkload::new();
        let dk = w.domain_knowledge();
        let solved = dk.solved.unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut any = false;
        for i in 0..200 {
            let c = w.space().sample(&mut rng);
            let p = w.profile(&c, 50 + i);
            if p.values().iter().any(|v| *v >= solved.target) {
                any = true;
                break;
            }
        }
        assert!(any, "no configuration ever reached the solved reward");
    }

    #[test]
    fn crashed_jobs_stay_crashed() {
        let w = LunarWorkload::new();
        let mut rng = StdRng::seed_from_u64(31);
        let crash_norm = norm().normalize(-100.0);
        let mut checked = 0;
        for i in 0..300 {
            let c = w.space().sample(&mut rng);
            if w.behavior(&c) == LunarBehavior::LearningCrash {
                let p = w.profile(&c, i);
                // After the collapse, the trailing quarter of the curve must
                // hover near the crash reward.
                let tail_start = (p.max_epochs() * 3 / 4) as usize;
                let tail = &p.values()[tail_start..];
                let m = stats::mean(tail).unwrap();
                // Only jobs that actually crashed within the horizon count.
                if tail.iter().all(|v| (*v - crash_norm).abs() < 0.08) {
                    checked += 1;
                    assert!((m - crash_norm).abs() < 0.06, "tail mean {m}");
                }
            }
            if checked >= 5 {
                return;
            }
        }
        assert!(checked > 0, "no crashed-within-horizon job found");
    }

    #[test]
    fn values_are_normalized() {
        let w = LunarWorkload::new();
        let mut rng = StdRng::seed_from_u64(8);
        for i in 0..50 {
            let c = w.space().sample(&mut rng);
            let p = w.profile(&c, i);
            assert!(p.values().iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn profiles_are_deterministic() {
        let w = LunarWorkload::new();
        let mut rng = StdRng::seed_from_u64(2);
        let c = w.space().sample(&mut rng);
        assert_eq!(w.profile(&c, 77), w.profile(&c, 77));
    }

    impl JobProfile {
        /// Mean of the last `n` values (test helper).
        fn trailing(&self, n: usize) -> f64 {
            let vals = self.values();
            let start = vals.len().saturating_sub(n);
            stats::mean(&vals[start..]).unwrap()
        }
    }
}
