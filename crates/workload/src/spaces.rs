//! The hyperparameter search spaces of the paper's two evaluation
//! workloads.
//!
//! CIFAR-10 uses the 14 hyperparameters of the cuda-convnet `layers-18pct`
//! network as tuned by Domhan et al. (Table 3 of [11], referenced in §6.1);
//! LunarLander uses the 11 hyperparameters of the Keras/Theano DQN-style
//! agent of Asadi & Williams (paper ref [4]).

use hyperdrive_types::HyperParamSpace;

/// The 14-hyperparameter CIFAR-10 search space (§6.1: "we explore up to 14
/// different hyperparameters for CIFAR-10").
///
/// Learning rate, per-layer weight decays, and initialization scales are
/// log-uniform, matching standard practice and the reference table.
pub fn cifar10_space() -> HyperParamSpace {
    HyperParamSpace::builder()
        .continuous_log("learning_rate", 1e-5, 1.0)
        .continuous_log("lr_reduction", 2.0, 100.0)
        .continuous("momentum", 0.0, 0.99)
        .continuous_log("weight_decay_conv1", 1e-6, 1e-1)
        .continuous_log("weight_decay_conv2", 1e-6, 1e-1)
        .continuous_log("weight_decay_conv3", 1e-6, 1e-1)
        .continuous_log("weight_decay_fc10", 1e-6, 1e-1)
        .continuous_log("init_std_conv1", 1e-4, 1e-1)
        .continuous_log("init_std_conv2", 1e-4, 1e-1)
        .continuous_log("init_std_conv3", 1e-4, 1e-1)
        .continuous_log("init_std_fc10", 1e-4, 1e-1)
        .continuous_log("lrn_scale", 1e-6, 1e-2)
        .continuous("lrn_power", 0.5, 2.0)
        .integer("batch_size", 32, 512)
        .build()
        .expect("cifar10 space is statically valid")
}

/// The 11-hyperparameter LunarLander search space (§6.1: "we explore 11
/// different hyperparameters for LunarLander", ranges from the model
/// authors).
pub fn lunar_lander_space() -> HyperParamSpace {
    HyperParamSpace::builder()
        .continuous_log("learning_rate", 1e-5, 1e-2)
        .continuous("gamma", 0.90, 0.9999)
        .continuous("epsilon_decay", 0.90, 0.99999)
        .continuous("epsilon_min", 0.0, 0.2)
        .integer("batch_size", 16, 256)
        .integer("hidden1", 16, 256)
        .integer("hidden2", 16, 256)
        .integer("target_update_freq", 1, 1000)
        .integer("memory_size", 1_000, 100_000)
        .continuous_log("soft_tau", 1e-4, 1e-1)
        .continuous_log("grad_clip", 0.1, 10.0)
        .build()
        .expect("lunar lander space is statically valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cifar_space_has_14_dims() {
        assert_eq!(cifar10_space().len(), 14);
    }

    #[test]
    fn lunar_space_has_11_dims() {
        assert_eq!(lunar_lander_space().len(), 11);
    }

    #[test]
    fn sampled_configs_cover_all_params() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = cifar10_space().sample(&mut rng);
        assert_eq!(c.len(), 14);
        assert!(c.get_f64("learning_rate").is_some());
        assert!(c.get_f64("batch_size").is_some());
        let l = lunar_lander_space().sample(&mut rng);
        assert_eq!(l.len(), 11);
        assert!(l.get_f64("gamma").is_some());
    }
}
