//! Synthetic LSTM language-model workload with group-lasso structured
//! sparsity — the §9 "Ongoing Work" scenario.
//!
//! The paper describes joint work on structurally shrinking LSTMs "for
//! both storage saving and computation time saving, without perplexity
//! loss", via group-lasso regularization whose strength λ "makes a
//! trade-off between sparsity and model perplexity". HyperDrive explores λ
//! (plus the usual training hyperparameters) "while monitoring both
//! perplexity and a sparsity-related metric" with "user-defined global
//! termination criteria through HyperDrive's SAP API".
//!
//! This workload reproduces that shape:
//!
//! * the **primary metric** is perplexity, reported (like all HyperDrive
//!   metrics) as a normalized higher-is-better score:
//!   `value = (ppl_max − ppl) / (ppl_max − ppl_min)` with
//!   `ppl ∈ [ppl_min, ppl_max] = [60, 800]`;
//! * the **secondary metric** is the fraction of weight groups driven to
//!   zero by the regularizer (`0` = dense, `1` = fully sparse), attached
//!   to the profile via [`JobProfile::with_secondary`];
//! * λ controls the trade-off: higher λ yields more sparsity and (beyond a
//!   sweet spot) worse perplexity, lower λ trains dense accurate models.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hyperdrive_types::{
    stats, Configuration, DomainKnowledge, HyperParamSpace, LearningDomain, MetricKind,
    MetricNormalizer, SimTime,
};

use crate::profile::JobProfile;
use crate::suspend::SuspendModel;
use crate::Workload;

fn kernel(x: f64, opt: f64, width: f64) -> f64 {
    let z = (x - opt) / width;
    (-0.5 * z * z).exp()
}

/// The 8-hyperparameter LSTM + group-lasso search space (§9; λ plus the
/// usual medium-LSTM training knobs of Zaremba et al., the paper's \[33\]).
pub fn lstm_space() -> HyperParamSpace {
    HyperParamSpace::builder()
        .continuous_log("lambda", 1e-6, 1e-2)
        .continuous_log("learning_rate", 1e-4, 10.0)
        .continuous("dropout", 0.0, 0.8)
        .integer("hidden_size", 200, 1500)
        .integer("num_layers", 1, 3)
        .integer("seq_len", 10, 70)
        .integer("batch_size", 10, 64)
        .continuous_log("grad_clip", 0.5, 20.0)
        .build()
        .expect("lstm space is statically valid")
}

/// Perplexity range used for normalization.
pub const PPL_RANGE: (f64, f64) = (60.0, 800.0);

/// Synthetic LSTM/PTB-style workload with a sparsity secondary metric.
///
/// # Example
///
/// ```
/// use hyperdrive_workload::{LstmWorkload, Workload};
/// use rand::SeedableRng;
///
/// let workload = LstmWorkload::new();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let config = workload.space().sample(&mut rng);
/// let profile = workload.profile(&config, 3);
/// assert!(profile.secondary_values().is_some(), "sparsity is reported");
/// ```
#[derive(Debug, Clone)]
pub struct LstmWorkload {
    space: HyperParamSpace,
    max_epochs: u32,
}

impl LstmWorkload {
    /// Creates the workload: 55 epochs of a few minutes each (medium-LSTM
    /// scale).
    pub fn new() -> Self {
        LstmWorkload { space: lstm_space(), max_epochs: 55 }
    }

    /// Overrides the epoch cap (for fast tests).
    pub fn with_max_epochs(mut self, max_epochs: u32) -> Self {
        assert!(max_epochs >= 1);
        self.max_epochs = max_epochs;
        self
    }

    /// The normalizer from raw perplexity to the higher-is-better score:
    /// feed it `-perplexity`.
    pub fn perplexity_normalizer() -> MetricNormalizer {
        MetricNormalizer::new(-PPL_RANGE.1, -PPL_RANGE.0).expect("static range is valid")
    }

    /// Converts a raw perplexity into the normalized primary metric.
    pub fn normalize_perplexity(ppl: f64) -> f64 {
        Self::perplexity_normalizer().normalize(-ppl)
    }

    /// Converts a normalized primary metric back into raw perplexity.
    pub fn denormalize_perplexity(value: f64) -> f64 {
        -Self::perplexity_normalizer().denormalize(value)
    }

    /// Latent quality (training health, ignoring λ) in `[0, 1]` and the
    /// final `(perplexity, sparsity)` pair. Exposed for calibration tests.
    pub fn outcome(&self, config: &Configuration) -> (f64, f64, f64) {
        let lr = config.get_f64("learning_rate").unwrap_or(1.0).log10();
        let dropout = config.get_f64("dropout").unwrap_or(0.5);
        let hidden = config.get_f64("hidden_size").unwrap_or(650.0);
        let layers = config.get_f64("num_layers").unwrap_or(2.0);
        let seq = config.get_f64("seq_len").unwrap_or(35.0);
        let clip = config.get_f64("grad_clip").unwrap_or(5.0).log10();
        let lambda = config.get_f64("lambda").unwrap_or(1e-4);

        let k_lr = kernel(lr, 0.0, 0.6); // SGD lr ~1 for PTB LSTMs
        let k_drop = kernel(dropout, 0.5, 0.25);
        let k_hidden = kernel((hidden / 650.0).log2(), 0.0, 1.0);
        let k_layers = kernel(layers, 2.0, 1.0);
        let k_seq = kernel(seq, 35.0, 20.0);
        let k_clip = kernel(clip, 0.7, 0.8);
        let q = (k_lr
            * k_drop.powf(0.5)
            * k_hidden.powf(0.6)
            * k_layers.powf(0.3)
            * k_seq.powf(0.2)
            * k_clip.powf(0.3))
        .clamp(0.0, 1.0);

        // λ trade-off: sparsity grows with λ; perplexity has a mild sweet
        // spot (a little regularization helps) then degrades.
        let log_lambda = lambda.log10(); // in [-6, -2]
        let sparsity = (1.0 / (1.0 + (-2.2 * (log_lambda + 3.6)).exp())).clamp(0.0, 0.95);
        // Moderate sparsity is nearly free (the §9 "without perplexity
        // loss" operating point); pushing toward full sparsity costs
        // steeply.
        let lambda_ppl_factor =
            1.0 - 0.04 * kernel(log_lambda, -4.2, 0.5) + 0.55 * (sparsity / 0.95).powf(4.0);

        // Base perplexity: good configurations reach ~75–90; poor ones
        // stay in the hundreds.
        let base_ppl = 72.0 + 550.0 * (1.0 - q).powf(2.2);
        let final_ppl = (base_ppl * lambda_ppl_factor).clamp(PPL_RANGE.0, PPL_RANGE.1);
        (q, final_ppl, sparsity)
    }
}

impl Default for LstmWorkload {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for LstmWorkload {
    fn name(&self) -> &str {
        "lstm-ptb"
    }

    fn domain_knowledge(&self) -> DomainKnowledge {
        DomainKnowledge {
            domain: LearningDomain::Supervised,
            metric: MetricKind::LowerIsBetter,
            normalizer: Self::perplexity_normalizer(),
            // A model stuck at ~uniform word prediction: ppl near the top
            // of the range, normalized score ≈ 0.
            random_performance: Self::normalize_perplexity(790.0),
            // Kill models whose perplexity never escapes ~700.
            kill_threshold: Self::normalize_perplexity(700.0),
            kill_warmup_evals: 2,
            solved: None,
        }
    }

    fn space(&self) -> &HyperParamSpace {
        &self.space
    }

    fn max_epochs(&self) -> u32 {
        self.max_epochs
    }

    fn eval_boundary(&self) -> u32 {
        5 // 5–10% of max epochs, the §9 heuristic for b.
    }

    fn default_target(&self) -> f64 {
        Self::normalize_perplexity(95.0)
    }

    fn suspend_model(&self) -> SuspendModel {
        SuspendModel::supervised_snapshot()
    }

    fn profile(&self, config: &Configuration, seed: u64) -> JobProfile {
        let mut rng = StdRng::seed_from_u64(config.stable_hash() ^ 0x157A);
        let mut noise_rng = StdRng::seed_from_u64(seed ^ 0x157A);
        let (q, final_ppl, final_sparsity) = self.outcome(config);

        let hidden = config.get_f64("hidden_size").unwrap_or(650.0);
        let seq = config.get_f64("seq_len").unwrap_or(35.0);
        // Epoch duration grows with model size; sparsity shortens later
        // epochs (the §9 computation-time saving).
        let size_factor = (hidden / 650.0).powf(0.8) * (seq / 35.0).powf(0.3);
        let config_factor = stats::sample_lognormal(&mut rng, 0.0, 0.10).clamp(0.6, 1.6);
        let base_duration = 150.0 * size_factor.clamp(0.3, 4.0) * config_factor;

        let start_ppl = rng.gen_range(650.0..800.0);
        let tau = (8.0 + 20.0 * (1.0 - q)).clamp(6.0, 40.0);
        let sparsity_tau = tau * 1.4;

        let mut durations = Vec::with_capacity(self.max_epochs as usize);
        let mut values = Vec::with_capacity(self.max_epochs as usize);
        let mut sparsities = Vec::with_capacity(self.max_epochs as usize);
        let mut noise = 0.0;
        for e in 1..=self.max_epochs {
            let x = f64::from(e);
            let progress = 1.0 - (-(x / tau)).exp();
            let sparsity = final_sparsity * (1.0 - (-(x / sparsity_tau)).exp());
            // Sparse groups shrink compute: up to ~35% per-epoch saving at
            // full sparsity.
            let speedup = 1.0 - 0.35 * sparsity;
            durations.push(SimTime::from_secs(
                base_duration * speedup * noise_rng.gen_range(0.97..1.03),
            ));
            noise = 0.5 * noise + stats::sample_normal(&mut noise_rng, 0.0, 3.0);
            let ppl = (start_ppl + (final_ppl - start_ppl) * progress + noise)
                .clamp(PPL_RANGE.0, PPL_RANGE.1);
            values.push(Self::normalize_perplexity(ppl));
            sparsities.push(sparsity.clamp(0.0, 1.0));
        }
        JobProfile::new(durations, values).with_secondary(sparsities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_round_trips() {
        for ppl in [60.0, 95.0, 400.0, 800.0] {
            let v = LstmWorkload::normalize_perplexity(ppl);
            assert!((0.0..=1.0).contains(&v));
            assert!((LstmWorkload::denormalize_perplexity(v) - ppl).abs() < 1e-9);
        }
        // Lower perplexity -> higher score.
        assert!(
            LstmWorkload::normalize_perplexity(80.0) > LstmWorkload::normalize_perplexity(200.0)
        );
    }

    #[test]
    fn lambda_controls_the_sparsity_perplexity_tradeoff() {
        let w = LstmWorkload::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut base = w.space().sample(&mut rng);
        // Fix a healthy training configuration.
        use hyperdrive_types::ParamValue::{Float, Int};
        base.set("learning_rate", Float(1.0));
        base.set("dropout", Float(0.5));
        base.set("hidden_size", Int(650));
        base.set("num_layers", Int(2));
        base.set("seq_len", Int(35));
        base.set("grad_clip", Float(5.0));

        let outcome_at = |lambda: f64| {
            let mut c = base.clone();
            c.set("lambda", Float(lambda));
            let (_, ppl, sparsity) = w.outcome(&c);
            (ppl, sparsity)
        };
        let (ppl_lo, sp_lo) = outcome_at(1e-6);
        let (ppl_hi, sp_hi) = outcome_at(1e-2);
        assert!(sp_hi > sp_lo + 0.3, "high lambda must sparsify: {sp_lo} -> {sp_hi}");
        assert!(ppl_hi > ppl_lo + 20.0, "too much lambda must cost perplexity");
        // A moderate lambda buys sparsity nearly for free (the paper's
        // "without perplexity loss" operating point).
        let (ppl_mid, sp_mid) = outcome_at(10f64.powf(-3.6));
        assert!(sp_mid > 0.3, "moderate lambda sparsifies: {sp_mid}");
        assert!(ppl_mid < ppl_lo * 1.25, "without large perplexity loss: {ppl_mid} vs {ppl_lo}");
    }

    #[test]
    fn profiles_report_monotone_sparsity() {
        let w = LstmWorkload::new();
        let mut rng = StdRng::seed_from_u64(3);
        let c = w.space().sample(&mut rng);
        let p = w.profile(&c, 7);
        let sparsity = p.secondary_values().expect("lstm reports sparsity");
        for win in sparsity.windows(2) {
            assert!(win[1] >= win[0] - 1e-12, "sparsity only grows");
        }
        assert!(sparsity.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn sparse_models_train_faster_per_epoch() {
        let w = LstmWorkload::new();
        let mut rng = StdRng::seed_from_u64(5);
        use hyperdrive_types::ParamValue::Float;
        let mut c = w.space().sample(&mut rng);
        c.set("lambda", Float(5e-3)); // heavy sparsity
        let p = w.profile(&c, 1);
        let first = p.epoch_duration(1).as_secs();
        let last = p.epoch_duration(p.max_epochs()).as_secs();
        assert!(
            last < first * 0.85,
            "late epochs should be cheaper once groups zero out: {first} -> {last}"
        );
    }

    #[test]
    fn good_configs_reach_low_perplexity() {
        let w = LstmWorkload::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut best_ppl = f64::INFINITY;
        for i in 0..200 {
            let c = w.space().sample(&mut rng);
            let p = w.profile(&c, i);
            best_ppl = best_ppl.min(LstmWorkload::denormalize_perplexity(p.final_value()));
        }
        assert!(best_ppl < 120.0, "best of 200 configs reached ppl {best_ppl}");
    }

    #[test]
    fn profiles_are_noise_stable_in_outcome() {
        // Different training-noise seeds must not change the config's
        // essential outcome, only perturb it.
        let w = LstmWorkload::new();
        let mut rng = StdRng::seed_from_u64(13);
        let c = w.space().sample(&mut rng);
        let a = w.profile(&c, 1).final_value();
        let b = w.profile(&c, 2).final_value();
        assert!((a - b).abs() < 0.05, "outcome flipped across noise seeds: {a} vs {b}");
    }
}
