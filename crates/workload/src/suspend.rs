//! Suspend/resume cost models.
//!
//! The paper measures two very different suspend mechanisms:
//!
//! * **Supervised (§6.2.3)** — Caffe model snapshots: mean latency
//!   157.69 ms (σ = 72 ms, p95 = 219 ms, max 1.12 s); state size mean
//!   357.67 KB (σ = 122.46 KB, p95 = 685.26 KB, max 686.06 KB).
//! * **Reinforcement learning (Fig. 10)** — CRIU whole-process snapshots:
//!   latency up to 22.36 s, snapshot size up to 43.75 MB.
//!
//! [`SuspendModel`] samples `(latency, snapshot bytes)` pairs from lognormal
//! distributions calibrated to those published statistics (truncated at the
//! published maxima). Executors charge the latency to the experiment clock
//! and store the snapshot bytes through the AppStat DB, so scheduling
//! policies pay the real (simulated) cost of every suspension.

use rand::Rng;

use hyperdrive_types::{stats, SimTime};

/// One sampled suspend event cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuspendCost {
    /// Time from the suspend request until model state is stored.
    pub latency: SimTime,
    /// Size of the captured state in bytes.
    pub snapshot_bytes: u64,
}

/// A stochastic model of suspend latency and snapshot size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuspendModel {
    latency_mu: f64,
    latency_sigma: f64,
    latency_max_secs: f64,
    size_mu: f64,
    size_sigma: f64,
    size_max_bytes: f64,
    /// Resume is modelled as a fraction of suspend latency.
    resume_factor: f64,
}

impl SuspendModel {
    /// Builds a model from target mean/std of latency (seconds) and size
    /// (bytes), with hard caps at the published maxima.
    ///
    /// Lognormal parameters are derived by moment matching:
    /// `sigma² = ln(1 + (std/mean)²)`, `mu = ln(mean) − sigma²/2`.
    pub fn from_moments(
        latency_mean_secs: f64,
        latency_std_secs: f64,
        latency_max_secs: f64,
        size_mean_bytes: f64,
        size_std_bytes: f64,
        size_max_bytes: f64,
    ) -> Self {
        assert!(latency_mean_secs > 0.0 && size_mean_bytes > 0.0);
        let moment = |mean: f64, std: f64| -> (f64, f64) {
            let cv2 = (std / mean).powi(2);
            let sigma2 = (1.0 + cv2).ln();
            ((mean.ln() - sigma2 / 2.0), sigma2.sqrt())
        };
        let (latency_mu, latency_sigma) = moment(latency_mean_secs, latency_std_secs);
        let (size_mu, size_sigma) = moment(size_mean_bytes, size_std_bytes);
        SuspendModel {
            latency_mu,
            latency_sigma,
            latency_max_secs,
            size_mu,
            size_sigma,
            size_max_bytes,
            resume_factor: 0.8,
        }
    }

    /// The supervised-learning snapshot model of §6.2.3 (Caffe model
    /// state through the HyperDrive application library).
    pub fn supervised_snapshot() -> Self {
        Self::from_moments(0.157_69, 0.072, 1.12, 357.67 * 1024.0, 122.46 * 1024.0, 686.06 * 1024.0)
    }

    /// The CRIU whole-process snapshot model of Fig. 10 (LunarLander).
    pub fn criu_process() -> Self {
        Self::from_moments(
            7.5,
            4.5,
            22.36,
            24.0 * 1024.0 * 1024.0,
            9.0 * 1024.0 * 1024.0,
            43.75 * 1024.0 * 1024.0,
        )
    }

    /// Samples the cost of one suspend event.
    pub fn sample_suspend<R: Rng + ?Sized>(&self, rng: &mut R) -> SuspendCost {
        let latency = stats::sample_lognormal(rng, self.latency_mu, self.latency_sigma)
            .min(self.latency_max_secs);
        let size =
            stats::sample_lognormal(rng, self.size_mu, self.size_sigma).min(self.size_max_bytes);
        SuspendCost { latency: SimTime::from_secs(latency), snapshot_bytes: size as u64 }
    }

    /// Samples the latency of resuming from a snapshot (restoring state on
    /// a possibly different machine).
    pub fn sample_resume<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        let latency = stats::sample_lognormal(rng, self.latency_mu, self.latency_sigma)
            .min(self.latency_max_secs);
        SimTime::from_secs(latency * self.resume_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn supervised_moments_match_section_6_2_3() {
        let model = SuspendModel::supervised_snapshot();
        let mut rng = StdRng::seed_from_u64(1);
        let costs: Vec<SuspendCost> = (0..20_000).map(|_| model.sample_suspend(&mut rng)).collect();
        let lat: Vec<f64> = costs.iter().map(|c| c.latency.as_secs()).collect();
        let sizes: Vec<f64> = costs.iter().map(|c| c.snapshot_bytes as f64 / 1024.0).collect();

        let mean_lat = stats::mean(&lat).unwrap();
        assert!((mean_lat - 0.158).abs() < 0.02, "mean latency {mean_lat}s vs paper 157.69ms");
        let p95 = stats::percentile(&lat, 0.95).unwrap();
        assert!((p95 - 0.219).abs() < 0.08, "p95 latency {p95}s vs paper 219ms");
        assert!(lat.iter().all(|l| *l <= 1.12 + 1e-9), "latency cap 1.12s");

        let mean_size = stats::mean(&sizes).unwrap();
        assert!((mean_size - 357.67).abs() < 40.0, "mean size {mean_size}KB vs paper 357.67KB");
        assert!(sizes.iter().all(|s| *s <= 686.06 + 1e-6), "size cap 686.06KB");
    }

    #[test]
    fn criu_stays_under_published_maxima() {
        let model = SuspendModel::criu_process();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let c = model.sample_suspend(&mut rng);
            assert!(c.latency.as_secs() <= 22.36 + 1e-9);
            assert!(c.snapshot_bytes as f64 <= 43.75 * 1024.0 * 1024.0 + 1.0);
        }
    }

    #[test]
    fn resume_is_cheaper_than_suspend_on_average() {
        let model = SuspendModel::criu_process();
        let mut rng = StdRng::seed_from_u64(3);
        let sus: Vec<f64> =
            (0..5000).map(|_| model.sample_suspend(&mut rng).latency.as_secs()).collect();
        let res: Vec<f64> = (0..5000).map(|_| model.sample_resume(&mut rng).as_secs()).collect();
        assert!(stats::mean(&res).unwrap() < stats::mean(&sus).unwrap());
    }

    #[test]
    fn costs_are_positive() {
        let model = SuspendModel::supervised_snapshot();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let c = model.sample_suspend(&mut rng);
            assert!(c.latency > SimTime::ZERO);
            assert!(c.snapshot_bytes > 0);
        }
    }
}
