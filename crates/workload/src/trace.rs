//! Replayable traces (§7.1 Trace Generator).
//!
//! The paper's sensitivity analysis feeds a trace-driven simulator with
//! "iteration timing and performance metrics" collected from live runs, and
//! the Trace Generator "can create traces by changing the configuration
//! orders". [`TraceSet`] is that artifact: one [`JobTrace`] per
//! configuration, with a CSV codec for persistence and deterministic order
//! permutation for the Fig. 12c experiment.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use hyperdrive_types::{Error, Result, SimTime};

use crate::profile::JobProfile;
use crate::Workload;

/// The recorded execution of one configuration: per-epoch durations
/// (seconds) and normalized performance values.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTrace {
    /// Index of the configuration in the original generation order.
    pub config_index: u32,
    /// Per-epoch durations in seconds.
    pub epoch_durations: Vec<f64>,
    /// Per-epoch normalized performance values.
    pub values: Vec<f64>,
}

impl JobTrace {
    /// Converts the trace into a replayable [`JobProfile`].
    pub fn to_profile(&self) -> JobProfile {
        JobProfile::new(
            self.epoch_durations.iter().map(|d| SimTime::from_secs(*d)).collect(),
            self.values.clone(),
        )
    }

    /// Builds a trace from a profile.
    pub fn from_profile(config_index: u32, profile: &JobProfile) -> Self {
        JobTrace {
            config_index,
            epoch_durations: profile.epoch_durations().iter().map(|d| d.as_secs()).collect(),
            values: profile.values().to_vec(),
        }
    }
}

/// A replayable workload: an ordered collection of job traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSet {
    /// Name of the generating workload (e.g. `cifar10`).
    pub workload_name: String,
    /// The traces, in the order a scheduler will receive them.
    pub traces: Vec<JobTrace>,
}

impl TraceSet {
    /// Collects a trace set by running `n_configs` random configurations of
    /// `workload` to completion (the "live system experiments" feeding the
    /// simulator). `base_seed` fixes both the sampled configurations and
    /// the per-job noise.
    pub fn generate(workload: &dyn Workload, n_configs: usize, base_seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(base_seed);
        let traces = (0..n_configs)
            .map(|i| {
                let config = workload.space().sample(&mut rng);
                let profile = workload.profile(&config, base_seed.wrapping_add(i as u64));
                JobTrace::from_profile(i as u32, &profile)
            })
            .collect();
        TraceSet { workload_name: workload.name().to_string(), traces }
    }

    /// [`TraceSet::generate`] backed by an on-disk cache directory: the
    /// set for a given `(workload, n_configs, base_seed)` is generated at
    /// most once and later callers — including concurrently running
    /// figure bins — re-read it. The CSV codec round-trips floats
    /// bitwise, so a cached replay is indistinguishable from
    /// regeneration. Writers use a unique temp file plus rename, so
    /// readers never observe a torn file; any unreadable or wrong-shape
    /// cache entry is silently regenerated and overwritten. Returns the
    /// set and whether it was served from the cache.
    pub fn generate_cached(
        workload: &dyn Workload,
        n_configs: usize,
        base_seed: u64,
        dir: impl AsRef<Path>,
    ) -> (Self, bool) {
        let dir = dir.as_ref();
        let file = format!("trace-{}-{base_seed}-{n_configs}.csv", workload.name());
        let path = dir.join(&file);
        if let Ok(set) = Self::read_from_path(&path) {
            if set.workload_name == workload.name() && set.len() == n_configs {
                return (set, true);
            }
        }
        let set = Self::generate(workload, n_configs, base_seed);
        // Best effort: a read-only results directory must not fail the
        // experiment, only the reuse.
        if std::fs::create_dir_all(dir).is_ok() {
            let tmp = dir.join(format!("{file}.tmp.{}", std::process::id()));
            if set.write_to_path(&tmp).is_ok() && std::fs::rename(&tmp, &path).is_err() {
                let _ = std::fs::remove_file(&tmp);
            }
        }
        (set, false)
    }

    /// Number of traced configurations.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True if the set contains no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Returns a copy with the trace *order* permuted deterministically by
    /// `order_seed` (Fig. 12c runs 25 random configuration orders). Trace
    /// contents are untouched.
    pub fn permuted(&self, order_seed: u64) -> TraceSet {
        let mut rng = StdRng::seed_from_u64(order_seed);
        let mut traces = self.traces.clone();
        traces.shuffle(&mut rng);
        TraceSet { workload_name: self.workload_name.clone(), traces }
    }

    /// Serializes the set to the HyperDrive trace CSV format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write<W: Write>(&self, writer: W) -> Result<()> {
        let mut w = BufWriter::new(writer);
        writeln!(w, "# hyperdrive-trace v1")?;
        writeln!(w, "# workload: {}", self.workload_name)?;
        writeln!(w, "config,epoch,duration_secs,value")?;
        for t in &self.traces {
            for (i, (d, v)) in t.epoch_durations.iter().zip(&t.values).enumerate() {
                // Shortest-round-trip float formatting: a parsed trace is
                // *bitwise* the written one, so replaying from a cached
                // file is indistinguishable from regenerating.
                writeln!(w, "{},{},{},{}", t.config_index, i + 1, d, v)?;
            }
        }
        w.flush()?;
        Ok(())
    }

    /// Writes the set to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to_path(&self, path: impl AsRef<Path>) -> Result<()> {
        let file = std::fs::File::create(path)?;
        self.write(file)
    }

    /// Parses a trace set from the CSV format produced by
    /// [`TraceSet::write`]. Traces appear in first-occurrence order of
    /// their config index.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TraceFormat`] for malformed content and propagates
    /// I/O errors.
    pub fn read<R: Read>(reader: R) -> Result<Self> {
        let mut workload_name = String::from("unknown");
        // Traces keyed by config index, in order of first appearance.
        let mut order: Vec<u32> = Vec::new();
        let mut traces: std::collections::HashMap<u32, JobTrace> = std::collections::HashMap::new();

        for (lineno, line) in BufReader::new(reader).lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                if let Some(name) = rest.trim().strip_prefix("workload:") {
                    workload_name = name.trim().to_string();
                }
                continue;
            }
            if line.starts_with("config,") {
                continue; // header row
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 4 {
                return Err(Error::TraceFormat(format!(
                    "line {}: expected 4 fields, got {}",
                    lineno + 1,
                    fields.len()
                )));
            }
            let parse_err =
                |what: &str| Error::TraceFormat(format!("line {}: bad {what}: {line}", lineno + 1));
            let config: u32 = fields[0].parse().map_err(|_| parse_err("config index"))?;
            let epoch: u32 = fields[1].parse().map_err(|_| parse_err("epoch"))?;
            let duration: f64 = fields[2].parse().map_err(|_| parse_err("duration"))?;
            let value: f64 = fields[3].parse().map_err(|_| parse_err("value"))?;
            if !duration.is_finite() || duration <= 0.0 || !value.is_finite() {
                return Err(parse_err("numeric value"));
            }
            let trace = traces.entry(config).or_insert_with(|| {
                order.push(config);
                JobTrace { config_index: config, epoch_durations: Vec::new(), values: Vec::new() }
            });
            if epoch as usize != trace.values.len() + 1 {
                return Err(Error::TraceFormat(format!(
                    "line {}: config {config} epochs out of order (expected {}, got {epoch})",
                    lineno + 1,
                    trace.values.len() + 1
                )));
            }
            trace.epoch_durations.push(duration);
            trace.values.push(value);
        }

        // Every index in `order` was inserted into the map above, so the
        // lookups always succeed; filter_map keeps this panic-free anyway.
        let traces = order.into_iter().filter_map(|i| traces.remove(&i)).collect();
        Ok(TraceSet { workload_name, traces })
    }

    /// Reads a trace set from a file.
    ///
    /// # Errors
    ///
    /// See [`TraceSet::read`].
    pub fn read_from_path(path: impl AsRef<Path>) -> Result<Self> {
        let file = std::fs::File::open(path)?;
        Self::read(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cifar::CifarWorkload;

    fn small_set() -> TraceSet {
        let workload = CifarWorkload::new().with_max_epochs(5);
        TraceSet::generate(&workload, 4, 11)
    }

    #[test]
    fn generate_produces_requested_configs() {
        let set = small_set();
        assert_eq!(set.len(), 4);
        assert_eq!(set.workload_name, "cifar10");
        for (i, t) in set.traces.iter().enumerate() {
            assert_eq!(t.config_index, i as u32);
            assert_eq!(t.values.len(), 5);
        }
    }

    #[test]
    fn csv_round_trip() {
        let set = small_set();
        let mut buf = Vec::new();
        set.write(&mut buf).unwrap();
        let parsed = TraceSet::read(buf.as_slice()).unwrap();
        assert_eq!(parsed.workload_name, set.workload_name);
        assert_eq!(parsed.len(), set.len());
        for (a, b) in parsed.traces.iter().zip(&set.traces) {
            assert_eq!(a.config_index, b.config_index);
            assert_eq!(a.values.len(), b.values.len());
            for (x, y) in a.values.iter().zip(&b.values) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn csv_round_trip_is_bitwise_exact() {
        // The cache contract: replaying a written trace must reproduce
        // every duration and value to the last bit, not to a tolerance.
        let set = small_set();
        let mut buf = Vec::new();
        set.write(&mut buf).unwrap();
        let parsed = TraceSet::read(buf.as_slice()).unwrap();
        assert_eq!(parsed, set);
    }

    #[test]
    fn generate_cached_reuses_and_heals() {
        let workload = CifarWorkload::new().with_max_epochs(5);
        let dir =
            std::env::temp_dir().join(format!("hyperdrive-tracecache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let (cold, hit) = TraceSet::generate_cached(&workload, 4, 11, &dir);
        assert!(!hit, "an empty cache directory cannot hit");
        let (warm, hit) = TraceSet::generate_cached(&workload, 4, 11, &dir);
        assert!(hit, "the second call must be served from disk");
        assert_eq!(warm, cold, "a cached set must be bitwise the generated one");

        // A different shape is a different entry, not a collision.
        let (other, hit) = TraceSet::generate_cached(&workload, 3, 11, &dir);
        assert!(!hit);
        assert_eq!(other.len(), 3);

        // Corruption heals: a damaged entry is regenerated and rewritten.
        let path = dir.join("trace-cifar10-11-4.csv");
        std::fs::write(&path, "config,epoch,duration_secs,value\n0,1,garbage,0.5\n").unwrap();
        let (healed, hit) = TraceSet::generate_cached(&workload, 4, 11, &dir);
        assert!(!hit, "a corrupt entry must regenerate, not serve");
        assert_eq!(healed, cold);
        let (rewarm, hit) = TraceSet::generate_cached(&workload, 4, 11, &dir);
        assert!(hit, "healing must rewrite the cache entry");
        assert_eq!(rewarm, cold);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn permutation_is_deterministic_and_content_preserving() {
        let set = small_set();
        let p1 = set.permuted(3);
        let p2 = set.permuted(3);
        assert_eq!(p1, p2);
        let mut indices: Vec<u32> = p1.traces.iter().map(|t| t.config_index).collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2, 3]);
        // A different seed gives a different order (with 4! = 24 orders,
        // seeds 3 and 4 colliding is possible but not for these values).
        let p3 = set.permuted(4);
        assert_ne!(
            p1.traces.iter().map(|t| t.config_index).collect::<Vec<_>>(),
            p3.traces.iter().map(|t| t.config_index).collect::<Vec<_>>()
        );
    }

    /// Parses `input`, requiring a [`Error::TraceFormat`] whose message
    /// contains `expect_msg` (each malformed shape must be diagnosed as
    /// itself, not as some other failure).
    fn assert_trace_error(input: &str, expect_msg: &str) {
        match TraceSet::read(input.as_bytes()) {
            Err(hyperdrive_types::Error::TraceFormat(msg)) => assert!(
                msg.contains(expect_msg),
                "expected message containing {expect_msg:?}, got {msg:?}"
            ),
            Err(other) => panic!("expected TraceFormat, got {other:?}"),
            Ok(_) => panic!("malformed input parsed: {input:?}"),
        }
    }

    #[test]
    fn too_few_fields_are_rejected() {
        assert_trace_error("0,1,60.0", "expected 4 fields, got 3");
    }

    #[test]
    fn too_many_fields_are_rejected() {
        assert_trace_error("0,1,60.0,0.5,extra", "expected 4 fields, got 5");
    }

    #[test]
    fn non_numeric_config_index_is_rejected() {
        assert_trace_error("x,1,60.0,0.5", "bad config index");
    }

    #[test]
    fn non_numeric_epoch_is_rejected() {
        assert_trace_error("0,one,60.0,0.5", "bad epoch");
    }

    #[test]
    fn non_numeric_duration_is_rejected() {
        assert_trace_error("0,1,abc,0.5", "bad duration");
    }

    #[test]
    fn non_numeric_value_is_rejected() {
        assert_trace_error("0,1,60.0,?", "bad value");
    }

    #[test]
    fn non_positive_duration_is_rejected() {
        assert_trace_error("0,1,-5.0,0.5", "bad numeric value");
        assert_trace_error("0,1,0.0,0.5", "bad numeric value");
        assert_trace_error("0,1,inf,0.5", "bad numeric value");
    }

    #[test]
    fn non_finite_value_is_rejected() {
        assert_trace_error("0,1,60.0,NaN", "bad numeric value");
    }

    #[test]
    fn epoch_gaps_are_rejected() {
        assert_trace_error("0,2,60.0,0.5", "epochs out of order (expected 1, got 2)");
        assert_trace_error("0,1,60.0,0.5\n0,3,61.0,0.6", "epochs out of order (expected 2, got 3)");
    }

    #[test]
    fn error_reports_the_offending_line_number() {
        // Line 1 is a comment, line 2 the header, line 3 the bad row.
        assert_trace_error(
            "# hyperdrive-trace v1\nconfig,epoch,duration_secs,value\n0,1,bad,0.5",
            "line 3",
        );
    }

    #[test]
    fn trace_profile_round_trip() {
        let set = small_set();
        let profile = set.traces[0].to_profile();
        let back = JobTrace::from_profile(0, &profile);
        assert_eq!(back, set.traces[0]);
    }

    #[test]
    fn file_round_trip() {
        let set = small_set();
        let dir = std::env::temp_dir().join("hyperdrive-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("set.csv");
        set.write_to_path(&path).unwrap();
        let parsed = TraceSet::read_from_path(&path).unwrap();
        assert_eq!(parsed.len(), set.len());
        std::fs::remove_file(&path).ok();
    }
}
