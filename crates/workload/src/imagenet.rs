//! Synthetic ImageNet22k-scale workload — the paper's §1 motivating
//! example: "a high-quality ImageNet22k image classification model can
//! take up to ten days to train to convergence using 62 machines"
//! (Project Adam, the paper's ref [8]).
//!
//! Epochs here cost *hours*, not minutes (60 epochs × ~4 h ≈ 10 days), so
//! every wasted configuration burns machine-days — the regime where early
//! termination pays most. Top-1 accuracy over 21,841 classes: random
//! performance is effectively zero, strong models reach the high-30%s.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hyperdrive_types::{
    stats, Configuration, DomainKnowledge, HyperParamSpace, LearningDomain, MetricKind,
    MetricNormalizer, SimTime,
};

use crate::profile::JobProfile;
use crate::suspend::SuspendModel;
use crate::Workload;

fn kernel(x: f64, opt: f64, width: f64) -> f64 {
    let z = (x - opt) / width;
    (-0.5 * z * z).exp()
}

/// The 10-hyperparameter ImageNet22k search space.
pub fn imagenet_space() -> HyperParamSpace {
    HyperParamSpace::builder()
        .continuous_log("learning_rate", 1e-4, 1.0)
        .continuous("momentum", 0.0, 0.99)
        .continuous_log("weight_decay", 1e-6, 1e-2)
        .integer("batch_size", 64, 2048)
        .continuous_log("init_scale", 1e-3, 1e-1)
        .continuous("lr_warmup_frac", 0.0, 0.2)
        .continuous_log("lr_decay", 2.0, 50.0)
        .integer("async_workers", 4, 128)
        .continuous_log("staleness_bound", 1.0, 64.0)
        .continuous("label_smoothing", 0.0, 0.3)
        .build()
        .expect("imagenet space is statically valid")
}

/// Synthetic ImageNet22k workload: 60 epochs of roughly 4 hours each.
///
/// # Example
///
/// ```
/// use hyperdrive_workload::{ImagenetWorkload, Workload};
/// use rand::SeedableRng;
///
/// let workload = ImagenetWorkload::new();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let config = workload.space().sample(&mut rng);
/// let profile = workload.profile(&config, 7);
/// // Full training is on the order of ten days.
/// assert!(profile.total_duration().as_hours() > 5.0 * 24.0);
/// ```
#[derive(Debug, Clone)]
pub struct ImagenetWorkload {
    space: HyperParamSpace,
    max_epochs: u32,
}

impl ImagenetWorkload {
    /// Creates the workload at the paper's scale (60 × ~4 h epochs).
    pub fn new() -> Self {
        ImagenetWorkload { space: imagenet_space(), max_epochs: 60 }
    }

    /// Overrides the epoch cap (for fast tests).
    pub fn with_max_epochs(mut self, max_epochs: u32) -> Self {
        assert!(max_epochs >= 1);
        self.max_epochs = max_epochs;
        self
    }

    /// Latent quality in `[0, 1]` and divergence flag. Exposed for
    /// calibration tests.
    pub fn quality(&self, config: &Configuration) -> (f64, bool) {
        let lr = config.get_f64("learning_rate").unwrap_or(0.01).log10();
        let momentum = config.get_f64("momentum").unwrap_or(0.9);
        let wd = config.get_f64("weight_decay").unwrap_or(1e-4).log10();
        let batch = config.get_f64("batch_size").unwrap_or(512.0);
        let init = config.get_f64("init_scale").unwrap_or(1e-2).log10();
        let workers = config.get_f64("async_workers").unwrap_or(32.0);
        let staleness = config.get_f64("staleness_bound").unwrap_or(8.0).log10();
        let smoothing = config.get_f64("label_smoothing").unwrap_or(0.1);

        // Asynchronous SGD at scale: too-high lr or unbounded staleness
        // with many workers diverges (the Project Adam failure modes).
        let diverged = lr > -0.5 || (workers > 64.0 && staleness > 1.4 && lr > -1.5) || init > -1.2;

        let k_lr = kernel(lr, -2.0, 0.7);
        let k_mom = kernel(momentum, 0.9, 0.3);
        let k_wd = kernel(wd, -4.0, 1.2);
        let k_batch = kernel((batch / 512.0).log2(), 0.0, 1.6);
        let k_init = kernel(init, -2.0, 0.8);
        let k_workers = kernel((workers / 32.0).log2(), 0.0, 1.5);
        let k_smooth = kernel(smoothing, 0.1, 0.12);

        let q = (k_lr
            * k_mom.powf(0.5)
            * k_wd.powf(0.4)
            * k_batch.powf(0.3)
            * k_init.powf(0.6)
            * k_workers.powf(0.3)
            * k_smooth.powf(0.2))
        .clamp(0.0, 1.0);
        (q, diverged)
    }
}

impl Default for ImagenetWorkload {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for ImagenetWorkload {
    fn name(&self) -> &str {
        "imagenet22k"
    }

    fn domain_knowledge(&self) -> DomainKnowledge {
        DomainKnowledge {
            domain: LearningDomain::Supervised,
            metric: MetricKind::Accuracy,
            normalizer: MetricNormalizer::identity(),
            // Random top-1 over 21,841 classes is ~0.005%.
            random_performance: 0.0001,
            // Kill anything stuck below 1% top-1 after warmup.
            kill_threshold: 0.01,
            kill_warmup_evals: 2,
            solved: None,
        }
    }

    fn space(&self) -> &HyperParamSpace {
        &self.space
    }

    fn max_epochs(&self) -> u32 {
        self.max_epochs
    }

    fn eval_boundary(&self) -> u32 {
        // ~8% of max epochs (§9's 5–10% heuristic). Must also be at least
        // the curve model's minimum observation count, so the very first
        // boundary can already produce a prediction.
        5
    }

    fn default_target(&self) -> f64 {
        0.30 // strong top-1 accuracy for a 22k-class model of this era
    }

    fn suspend_model(&self) -> SuspendModel {
        // Large-model state: hundreds of MB, tens of seconds.
        SuspendModel::from_moments(
            25.0,
            12.0,
            90.0,
            600.0 * 1024.0 * 1024.0,
            200.0 * 1024.0 * 1024.0,
            1536.0 * 1024.0 * 1024.0,
        )
    }

    fn profile(&self, config: &Configuration, seed: u64) -> JobProfile {
        let mut rng = StdRng::seed_from_u64(config.stable_hash() ^ 0x1A6E);
        let mut noise_rng = StdRng::seed_from_u64(seed ^ 0x1A6E);
        let (q, diverged) = self.quality(config);

        let batch = config.get_f64("batch_size").unwrap_or(512.0);
        let workers = config.get_f64("async_workers").unwrap_or(32.0);
        // ~4h epochs; more async workers shorten epochs sublinearly.
        let speedup = (workers / 32.0).powf(0.55).clamp(0.3, 3.0);
        let size_factor = (batch / 512.0).powf(-0.1).clamp(0.8, 1.3);
        let config_factor = stats::sample_lognormal(&mut rng, 0.0, 0.08).clamp(0.7, 1.4);
        let base_hours = 4.0 * size_factor * config_factor / speedup;

        let learner = !diverged && q >= 0.012;
        let y0 = 0.0005;
        let (final_acc, tau, beta) = if learner {
            let final_acc = y0 + 0.40 * (q / 0.6).powf(0.6).min(1.0);
            let lr = config.get_f64("learning_rate").unwrap_or(0.01);
            let tau = (14.0 * (0.01 / lr).powf(0.35)).clamp(4.0, 80.0);
            (final_acc, tau, rng.gen_range(0.8..1.3))
        } else {
            (y0 + rng.gen_range(0.0..0.003), 1.0, 1.0)
        };

        let mut durations = Vec::with_capacity(self.max_epochs as usize);
        let mut values = Vec::with_capacity(self.max_epochs as usize);
        let mut noise = 0.0;
        for e in 1..=self.max_epochs {
            durations.push(SimTime::from_hours(base_hours * noise_rng.gen_range(0.97..1.03)));
            let mean = if learner {
                let x = f64::from(e);
                y0 + (final_acc - y0) * (1.0 - (-(x / tau).powf(beta)).exp())
            } else {
                final_acc
            };
            noise = 0.5 * noise + stats::sample_normal(&mut noise_rng, 0.0, 0.004);
            values.push((mean + noise).clamp(0.0, 0.6));
        }
        JobProfile::new(durations, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_training_takes_days() {
        let w = ImagenetWorkload::new();
        let mut rng = StdRng::seed_from_u64(1);
        let c = w.space().sample(&mut rng);
        let p = w.profile(&c, 1);
        let days = p.total_duration().as_hours() / 24.0;
        assert!((2.0..=30.0).contains(&days), "training should take days, got {days:.1}");
    }

    #[test]
    fn population_is_sparse_at_the_top() {
        let w = ImagenetWorkload::new();
        let mut rng = StdRng::seed_from_u64(2024);
        let finals: Vec<f64> =
            (0..300).map(|i| w.profile(&w.space().sample(&mut rng), i).final_value()).collect();
        let n = finals.len() as f64;
        let dead = finals.iter().filter(|v| **v < 0.01).count() as f64 / n;
        let strong = finals.iter().filter(|v| **v >= 0.30).count() as f64 / n;
        assert!(dead > 0.2, "many configs never learn: {dead}");
        assert!((0.005..0.2).contains(&strong), "strong configs are rare: {strong}");
    }

    #[test]
    fn async_workers_speed_up_epochs() {
        let w = ImagenetWorkload::new();
        use hyperdrive_types::ParamValue::Int;
        let mut rng = StdRng::seed_from_u64(3);
        let mut few = w.space().sample(&mut rng);
        let mut many = few.clone();
        few.set("async_workers", Int(8));
        many.set("async_workers", Int(96));
        let d_few = w.profile(&few, 1).mean_epoch_duration().as_hours();
        let d_many = w.profile(&many, 1).mean_epoch_duration().as_hours();
        assert!(d_many < d_few, "more workers must shorten epochs: {d_few} vs {d_many}");
    }

    #[test]
    fn divergence_conditions_fire() {
        let w = ImagenetWorkload::new();
        use hyperdrive_types::ParamValue::Float;
        let mut rng = StdRng::seed_from_u64(4);
        let mut c = w.space().sample(&mut rng);
        c.set("learning_rate", Float(0.9));
        let (_, diverged) = w.quality(&c);
        assert!(diverged, "lr 0.9 at this scale must diverge");
        assert!(w.profile(&c, 1).final_value() < 0.01);
    }

    #[test]
    fn domain_knowledge_matches_the_22k_task() {
        let dk = ImagenetWorkload::new().domain_knowledge();
        assert!(dk.random_performance < 0.001, "22k-way random accuracy is tiny");
        assert_eq!(dk.kill_threshold, 0.01);
        assert_eq!(ImagenetWorkload::new().default_target(), 0.30);
    }
}
