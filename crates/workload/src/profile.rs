//! Job profiles: the ground-truth execution a synthetic workload assigns to
//! one hyperparameter configuration.
//!
//! A [`JobProfile`] is what a real training run *would* produce if executed
//! to completion: the normalized performance measured at the end of every
//! epoch and each epoch's duration. Executors (live or simulated) reveal the
//! profile incrementally to scheduling policies — a policy never sees beyond
//! the epochs it has paid for, exactly as with real training.

use hyperdrive_types::SimTime;

/// The complete (hidden) execution profile of one training job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobProfile {
    epoch_durations: Vec<SimTime>,
    values: Vec<f64>,
    /// Optional secondary metric (e.g. model sparsity for the §9 LSTM
    /// group-lasso scenario), one value per epoch.
    secondary: Option<Vec<f64>>,
}

impl JobProfile {
    /// Creates a profile from per-epoch durations and normalized
    /// performance values.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths, are empty, or contain
    /// non-finite/negative durations or non-finite values.
    pub fn new(epoch_durations: Vec<SimTime>, values: Vec<f64>) -> Self {
        assert_eq!(
            epoch_durations.len(),
            values.len(),
            "durations and values must have equal length"
        );
        assert!(!values.is_empty(), "profile must contain at least one epoch");
        for d in &epoch_durations {
            assert!(d.as_secs().is_finite() && d.as_secs() > 0.0, "bad epoch duration {d}");
        }
        for v in &values {
            assert!(v.is_finite(), "bad profile value {v}");
        }
        JobProfile { epoch_durations, values, secondary: None }
    }

    /// Attaches a secondary metric series (§9's "additional metrics of
    /// concern", e.g. sparsity alongside perplexity).
    ///
    /// # Panics
    ///
    /// Panics if the series length differs from the epoch count or any
    /// value is non-finite.
    pub fn with_secondary(mut self, secondary: Vec<f64>) -> Self {
        assert_eq!(secondary.len(), self.values.len(), "secondary series must cover every epoch");
        assert!(secondary.iter().all(|v| v.is_finite()), "bad secondary value");
        self.secondary = Some(secondary);
        self
    }

    /// Secondary metric at the 1-based `epoch`, if this profile carries
    /// one.
    pub fn secondary_at(&self, epoch: u32) -> Option<f64> {
        assert!(epoch >= 1 && epoch <= self.max_epochs(), "epoch {epoch} out of range");
        self.secondary.as_ref().map(|s| s[(epoch - 1) as usize])
    }

    /// The full secondary series, if present.
    pub fn secondary_values(&self) -> Option<&[f64]> {
        self.secondary.as_deref()
    }

    /// Total number of epochs this job would train for if never terminated.
    pub fn max_epochs(&self) -> u32 {
        self.values.len() as u32
    }

    /// Duration of the 1-based `epoch`.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is 0 or exceeds [`JobProfile::max_epochs`].
    pub fn epoch_duration(&self, epoch: u32) -> SimTime {
        assert!(epoch >= 1 && epoch <= self.max_epochs(), "epoch {epoch} out of range");
        self.epoch_durations[(epoch - 1) as usize]
    }

    /// Normalized performance at the end of the 1-based `epoch`.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is 0 or exceeds [`JobProfile::max_epochs`].
    pub fn value_at(&self, epoch: u32) -> f64 {
        assert!(epoch >= 1 && epoch <= self.max_epochs(), "epoch {epoch} out of range");
        self.values[(epoch - 1) as usize]
    }

    /// All per-epoch values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// All per-epoch durations.
    pub fn epoch_durations(&self) -> &[SimTime] {
        &self.epoch_durations
    }

    /// Performance after the final epoch.
    pub fn final_value(&self) -> f64 {
        *self.values.last().expect("profile is non-empty")
    }

    /// Best performance over the whole profile.
    pub fn best_value(&self) -> f64 {
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// First 1-based epoch at which performance reaches `target`, if any.
    pub fn first_epoch_reaching(&self, target: f64) -> Option<u32> {
        self.values.iter().position(|v| *v >= target).map(|i| i as u32 + 1)
    }

    /// Mean epoch duration across the profile.
    pub fn mean_epoch_duration(&self) -> SimTime {
        let total: f64 = self.epoch_durations.iter().map(|d| d.as_secs()).sum();
        SimTime::from_secs(total / self.epoch_durations.len() as f64)
    }

    /// Total training time if run to completion.
    pub fn total_duration(&self) -> SimTime {
        SimTime::from_secs(self.epoch_durations.iter().map(|d| d.as_secs()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> JobProfile {
        JobProfile::new(
            vec![SimTime::from_secs(60.0), SimTime::from_secs(62.0), SimTime::from_secs(58.0)],
            vec![0.1, 0.4, 0.3],
        )
    }

    #[test]
    fn accessors() {
        let p = profile();
        assert_eq!(p.max_epochs(), 3);
        assert_eq!(p.value_at(2), 0.4);
        assert_eq!(p.epoch_duration(3).as_secs(), 58.0);
        assert_eq!(p.final_value(), 0.3);
        assert_eq!(p.best_value(), 0.4);
        assert!((p.mean_epoch_duration().as_secs() - 60.0).abs() < 1e-12);
        assert!((p.total_duration().as_secs() - 180.0).abs() < 1e-12);
    }

    #[test]
    fn first_epoch_reaching_finds_threshold() {
        let p = profile();
        assert_eq!(p.first_epoch_reaching(0.35), Some(2));
        assert_eq!(p.first_epoch_reaching(0.05), Some(1));
        assert_eq!(p.first_epoch_reaching(0.9), None);
    }

    #[test]
    fn secondary_series_round_trips() {
        let p = profile().with_secondary(vec![0.0, 0.2, 0.5]);
        assert_eq!(p.secondary_at(2), Some(0.2));
        assert_eq!(p.secondary_values(), Some(&[0.0, 0.2, 0.5][..]));
        assert_eq!(profile().secondary_at(1), None);
    }

    #[test]
    #[should_panic(expected = "cover every epoch")]
    fn short_secondary_panics() {
        let _ = profile().with_secondary(vec![0.1]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = JobProfile::new(vec![SimTime::from_secs(1.0)], vec![0.1, 0.2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn epoch_zero_panics() {
        profile().value_at(0);
    }

    #[test]
    #[should_panic(expected = "bad epoch duration")]
    fn zero_duration_panics() {
        let _ = JobProfile::new(vec![SimTime::ZERO], vec![0.1]);
    }
}
