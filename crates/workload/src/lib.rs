//! Synthetic training workloads for HyperDrive.
//!
//! The paper evaluates on live Caffe/CIFAR-10 (supervised) and
//! Keras-Theano/LunarLander (reinforcement learning) training. This crate
//! provides the drop-in substitutes used throughout the reproduction:
//! response-surface generators that map hyperparameter configurations to
//! complete learning-curve [`JobProfile`]s, calibrated to the population
//! statistics the paper reports (see DESIGN.md §1 for the substitution
//! argument), plus suspend/snapshot cost models and the §7 trace machinery.
//!
//! Scheduling policies only ever observe `(epoch, time, value)` streams —
//! the profile is revealed incrementally by executors exactly as real
//! training would be.
//!
//! # Example
//!
//! ```
//! use hyperdrive_workload::{CifarWorkload, TraceSet, Workload};
//!
//! let workload = CifarWorkload::new();
//! let traces = TraceSet::generate(&workload, 10, 42);
//! assert_eq!(traces.len(), 10);
//! // Fig 12c: permute the configuration order deterministically.
//! let reordered = traces.permuted(7);
//! assert_eq!(reordered.len(), 10);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cifar;
mod imagenet;
mod lstm;
mod lunar;
mod profile;
mod spaces;
mod suspend;
mod trace;

pub use cifar::CifarWorkload;
pub use imagenet::{imagenet_space, ImagenetWorkload};
pub use lstm::{lstm_space, LstmWorkload, PPL_RANGE};
pub use lunar::{LunarBehavior, LunarWorkload};
pub use profile::JobProfile;
pub use spaces::{cifar10_space, lunar_lander_space};
pub use suspend::{SuspendCost, SuspendModel};
pub use trace::{JobTrace, TraceSet};

use hyperdrive_types::{Configuration, DomainKnowledge, HyperParamSpace};

/// A synthetic training workload: maps hyperparameter configurations to
/// ground-truth execution profiles.
///
/// Implementations must be deterministic in `(config, seed)` so that
/// experiments are reproducible and the live/sim executors replay the same
/// underlying truth.
pub trait Workload: Send + Sync {
    /// Short workload name (used in trace files and reports).
    fn name(&self) -> &str;

    /// Model-owner domain knowledge (§2.1) for this workload.
    fn domain_knowledge(&self) -> DomainKnowledge;

    /// The hyperparameter search space.
    fn space(&self) -> &HyperParamSpace;

    /// Maximum epochs a job trains if never terminated.
    fn max_epochs(&self) -> u32;

    /// The evaluation boundary `b` (§5.3): policies make decisions every
    /// `b` epochs.
    fn eval_boundary(&self) -> u32;

    /// The default target performance for time-to-target experiments
    /// (normalized).
    fn default_target(&self) -> f64;

    /// Suspend/resume cost model for jobs of this workload.
    fn suspend_model(&self) -> SuspendModel;

    /// The ground-truth profile of `config` under `seed` (which controls
    /// training noise, not the configuration itself).
    fn profile(&self, config: &Configuration, seed: u64) -> JobProfile;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_object_safe() {
        let workloads: Vec<Box<dyn Workload>> =
            vec![Box::new(CifarWorkload::new()), Box::new(LunarWorkload::new())];
        for w in &workloads {
            assert!(!w.name().is_empty());
            assert!(w.max_epochs() > 0);
            assert!(w.eval_boundary() > 0);
            assert!((0.0..=1.0).contains(&w.default_target()));
        }
    }

    #[test]
    fn boundaries_match_paper_section_5_3() {
        assert_eq!(CifarWorkload::new().eval_boundary(), 10);
        // b = 2,000 iterations; one epoch is a 100-episode block.
        assert_eq!(LunarWorkload::new().eval_boundary(), 20);
    }
}
