//! Synthetic CIFAR-10 supervised-learning workload.
//!
//! Stands in for live Caffe training of the cuda-convnet `layers-18pct`
//! CNN (§6.1). The generator maps a 14-dimensional configuration to a full
//! validation-accuracy learning curve through a smooth response surface,
//! calibrated to the population statistics the paper reports:
//!
//! * ≈32% of random configurations never escape random accuracy (Fig. 2a);
//! * only a small fraction exceed 75% accuracy, with the best near the
//!   model's known ≈78% ceiling (Fig. 1, §6.2.2 target 77%);
//! * saturating growth with configuration-dependent speed, so slow strong
//!   learners *overtake* fast weak ones (Fig. 2b);
//! * per-epoch durations around one minute, roughly constant per
//!   configuration (§1, §9), varying across configurations;
//! * run-to-run noise of up to ~2% accuracy (§6.1 non-determinism).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hyperdrive_types::{stats, Configuration, DomainKnowledge, HyperParamSpace, SimTime};

use crate::profile::JobProfile;
use crate::spaces::cifar10_space;
use crate::suspend::SuspendModel;
use crate::Workload;

/// Gaussian response kernel in `[0, 1]`.
fn kernel(x: f64, opt: f64, width: f64) -> f64 {
    let z = (x - opt) / width;
    (-0.5 * z * z).exp()
}

/// Synthetic CIFAR-10 workload.
///
/// # Example
///
/// ```
/// use hyperdrive_workload::{CifarWorkload, Workload};
/// use rand::SeedableRng;
///
/// let workload = CifarWorkload::new();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let config = workload.space().sample(&mut rng);
/// let profile = workload.profile(&config, 7);
/// assert_eq!(profile.max_epochs(), 120);
/// ```
#[derive(Debug, Clone)]
pub struct CifarWorkload {
    space: HyperParamSpace,
    max_epochs: u32,
    /// Accuracy ceiling of the model family (layers-18pct tops out around
    /// 78% without augmentation).
    ceiling: f64,
}

impl CifarWorkload {
    /// Creates the workload with the paper's dimensions: 120 epochs of
    /// roughly one minute each.
    pub fn new() -> Self {
        CifarWorkload { space: cifar10_space(), max_epochs: 120, ceiling: 0.82 }
    }

    /// Overrides the maximum epoch count (useful for fast tests).
    pub fn with_max_epochs(mut self, max_epochs: u32) -> Self {
        assert!(max_epochs >= 1);
        self.max_epochs = max_epochs;
        self
    }

    /// The latent quality score in `[0, 1]` and a divergence flag for a
    /// configuration. Exposed for calibration tests; policies never see it.
    pub fn quality(&self, config: &Configuration) -> (f64, bool) {
        let lr = config.get_f64("learning_rate").unwrap_or(1e-3);
        let log_lr = lr.log10();
        let momentum = config.get_f64("momentum").unwrap_or(0.9);
        let wd_geo = {
            let wds = [
                config.get_f64("weight_decay_conv1").unwrap_or(1e-3),
                config.get_f64("weight_decay_conv2").unwrap_or(1e-3),
                config.get_f64("weight_decay_conv3").unwrap_or(1e-3),
                config.get_f64("weight_decay_fc10").unwrap_or(1e-3),
            ];
            wds.iter().map(|w| w.log10()).sum::<f64>() / 4.0
        };
        let init_geo = {
            let inits = [
                config.get_f64("init_std_conv1").unwrap_or(1e-2),
                config.get_f64("init_std_conv2").unwrap_or(1e-2),
                config.get_f64("init_std_conv3").unwrap_or(1e-2),
                config.get_f64("init_std_fc10").unwrap_or(1e-2),
            ];
            inits.iter().map(|w| w.log10()).sum::<f64>() / 4.0
        };
        let lrn = config.get_f64("lrn_scale").unwrap_or(1e-4).log10();
        let lrn_power = config.get_f64("lrn_power").unwrap_or(0.75);
        let batch = config.get_f64("batch_size").unwrap_or(128.0);

        let max_wd = [
            config.get_f64("weight_decay_conv1").unwrap_or(1e-3),
            config.get_f64("weight_decay_conv2").unwrap_or(1e-3),
            config.get_f64("weight_decay_conv3").unwrap_or(1e-3),
            config.get_f64("weight_decay_fc10").unwrap_or(1e-3),
        ]
        .into_iter()
        .fold(0.0f64, f64::max)
        .log10();

        // Hard failure modes, mirroring how real training dies:
        // * learning rate too large (outright divergence), aggravated by
        //   large initialization or extreme momentum;
        // * initialization too small (vanishing gradients, never breaks
        //   symmetry);
        // * any layer's weight decay so large it crushes the weights.
        let diverged = log_lr > -0.8
            || (log_lr > -1.4 && init_geo > -1.3)
            || (momentum > 0.97 && log_lr > -2.5)
            || init_geo < -3.2
            || max_wd > -1.05;

        let k_lr = kernel(log_lr, -3.0, 0.75);
        let k_mom = kernel(momentum, 0.90, 0.30);
        let k_wd = kernel(wd_geo, -3.5, 1.0);
        let k_init = kernel(init_geo, -2.2, 0.55);
        let k_lrn = kernel(lrn, -4.0, 2.5) * kernel(lrn_power, 0.9, 1.2);
        let k_batch = kernel((batch / 128.0).log2(), 0.0, 1.8);

        let q = k_lr
            * k_mom.powf(0.5)
            * k_wd.powf(0.4)
            * k_init.powf(0.6)
            * k_lrn.powf(0.1)
            * k_batch.powf(0.25);
        (q.clamp(0.0, 1.0), diverged)
    }
}

impl Default for CifarWorkload {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for CifarWorkload {
    fn name(&self) -> &str {
        "cifar10"
    }

    fn domain_knowledge(&self) -> DomainKnowledge {
        DomainKnowledge::cifar10()
    }

    fn space(&self) -> &HyperParamSpace {
        &self.space
    }

    fn max_epochs(&self) -> u32 {
        self.max_epochs
    }

    fn eval_boundary(&self) -> u32 {
        10 // §5.3: b = 10 for supervised learning.
    }

    fn default_target(&self) -> f64 {
        0.77 // §6.2.2: target accuracy 77%.
    }

    fn suspend_model(&self) -> SuspendModel {
        SuspendModel::supervised_snapshot()
    }

    fn profile(&self, config: &Configuration, seed: u64) -> JobProfile {
        // Configuration-intrinsic randomness (curve shape, epoch duration
        // factor) from the config's stable hash; run-to-run training noise
        // from `seed`.
        let mut rng = StdRng::seed_from_u64(config.stable_hash() ^ 0xC1FA_0010);
        let mut noise_rng = StdRng::seed_from_u64(seed ^ 0xC1FA_0010);
        let (q, diverged) = self.quality(config);
        let lr = config.get_f64("learning_rate").unwrap_or(1e-3);
        let batch = config.get_f64("batch_size").unwrap_or(128.0);

        // Epoch duration: ~1 min, mildly batch-dependent, with a per-config
        // lognormal factor and small per-epoch jitter.
        let size_factor = (batch / 128.0).powf(-0.15).clamp(0.7, 1.5);
        let config_factor = stats::sample_lognormal(&mut rng, 0.0, 0.12).clamp(0.6, 1.8);
        let base_duration = 60.0 * size_factor * config_factor;

        let learner = !diverged && q >= 0.012;
        let y0 = 0.10;
        let (final_acc, tau, beta) = if learner {
            let final_acc = y0 + (self.ceiling - y0) * (q / 0.62).powf(0.6).min(1.0);
            // Smaller learning rates learn more slowly: the overtake
            // mechanism. tau is the epoch scale of the saturating curve.
            let tau = (16.0 * (1e-3 / lr).powf(0.40)).clamp(3.0, 260.0);
            let beta = rng.gen_range(0.75..1.35);
            (final_acc, tau, beta)
        } else {
            // Non-learners hover at (or slightly below) random accuracy.
            let final_acc = y0 + rng.gen_range(-0.03..0.015);
            (final_acc, 1.0, 1.0)
        };

        let noise_std = 0.008;
        let rho = 0.5;
        let mut noise = 0.0;
        let mut durations = Vec::with_capacity(self.max_epochs as usize);
        let mut values = Vec::with_capacity(self.max_epochs as usize);
        for e in 1..=self.max_epochs {
            let jitter = noise_rng.gen_range(0.97..1.03);
            durations.push(SimTime::from_secs(base_duration * jitter));
            let mean = if learner {
                let x = f64::from(e);
                y0 + (final_acc - y0) * (1.0 - (-(x / tau).powf(beta)).exp())
            } else {
                final_acc
            };
            noise = rho * noise + stats::sample_normal(&mut noise_rng, 0.0, noise_std);
            values.push((mean + noise).clamp(0.01, 0.95));
        }
        JobProfile::new(durations, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_finals(n: usize, seed: u64) -> Vec<f64> {
        let w = CifarWorkload::new();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = w.space().sample(&mut rng);
                w.profile(&c, seed.wrapping_add(i as u64)).final_value()
            })
            .collect()
    }

    #[test]
    fn population_matches_fig2a_shape() {
        // Fig 2a: ~32% of configurations at or below random accuracy; only
        // a few configs exceed 75% (Fig 1: 3 of 50).
        let finals = sample_finals(400, 2024);
        let n = finals.len() as f64;
        let non_learning = finals.iter().filter(|v| **v <= 0.12).count() as f64 / n;
        let great = finals.iter().filter(|v| **v >= 0.75).count() as f64 / n;
        let median = hyperdrive_types::stats::median(&finals).unwrap();
        eprintln!("non_learning={non_learning} great={great} median={median}");
        assert!(
            (0.22..=0.42).contains(&non_learning),
            "non-learning fraction {non_learning} (paper: 32%)"
        );
        assert!((0.12..=0.38).contains(&median), "median final accuracy {median}");
        assert!((0.005..=0.15).contains(&great), "great fraction {great}");
    }

    #[test]
    fn some_config_reaches_the_77_percent_target() {
        let finals = sample_finals(400, 7);
        let best = finals.iter().cloned().fold(f64::MIN, f64::max);
        assert!(best >= 0.77, "best of 400 configs only reached {best}");
    }

    #[test]
    fn profiles_are_deterministic_per_seed() {
        let w = CifarWorkload::new();
        let mut rng = StdRng::seed_from_u64(3);
        let c = w.space().sample(&mut rng);
        assert_eq!(w.profile(&c, 55), w.profile(&c, 55));
    }

    #[test]
    fn different_seeds_vary_within_noise_band() {
        // §6.1: non-determinism varies accuracy at a given epoch by up to
        // ~2%.
        let w = CifarWorkload::new();
        let mut rng = StdRng::seed_from_u64(12);
        let c = w.space().sample(&mut rng);
        let a = w.profile(&c, 1);
        let b = w.profile(&c, 2);
        let max_dev =
            a.values().iter().zip(b.values()).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max);
        assert!(max_dev > 0.0, "seeds must differ");
        assert!(max_dev < 0.08, "noise too large: {max_dev}");
    }

    #[test]
    fn epoch_durations_are_roughly_constant_per_config() {
        let w = CifarWorkload::new();
        let mut rng = StdRng::seed_from_u64(5);
        let c = w.space().sample(&mut rng);
        let p = w.profile(&c, 9);
        let durs: Vec<f64> = p.epoch_durations().iter().map(|d| d.as_secs()).collect();
        let m = stats::mean(&durs).unwrap();
        let s = stats::std_dev(&durs).unwrap();
        assert!(s / m < 0.05, "per-config epoch jitter too large: {}", s / m);
        assert!((30.0..=130.0).contains(&m), "epoch duration {m}s");
    }

    #[test]
    fn overtake_pairs_exist() {
        // Fig 2b: some config B that trails at epoch 20 wins by epoch 120.
        let w = CifarWorkload::new();
        let mut rng = StdRng::seed_from_u64(2024);
        let profiles: Vec<JobProfile> =
            (0..60).map(|i| w.profile(&w.space().sample(&mut rng), 100 + i)).collect();
        let mut found = false;
        'outer: for a in &profiles {
            for b in &profiles {
                if a.value_at(20) > b.value_at(20) + 0.05
                    && b.final_value() > a.final_value() + 0.05
                    && b.final_value() > 0.4
                {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "no overtake pair among 60 configs");
    }

    #[test]
    fn high_learning_rates_diverge() {
        let w = CifarWorkload::new();
        let mut rng = StdRng::seed_from_u64(8);
        let mut c = w.space().sample(&mut rng);
        c.set("learning_rate", hyperdrive_types::ParamValue::Float(0.5));
        let (_, diverged) = w.quality(&c);
        assert!(diverged);
        let p = w.profile(&c, 3);
        assert!(p.final_value() <= 0.15, "diverged config should not learn");
    }

    #[test]
    fn good_config_learns_well() {
        let w = CifarWorkload::new();
        let mut c = Configuration::new();
        use hyperdrive_types::ParamValue::{Float, Int};
        c.set("learning_rate", Float(1e-3));
        c.set("lr_reduction", Float(10.0));
        c.set("momentum", Float(0.9));
        for p in
            ["weight_decay_conv1", "weight_decay_conv2", "weight_decay_conv3", "weight_decay_fc10"]
        {
            c.set(p, Float(1e-3));
        }
        for p in ["init_std_conv1", "init_std_conv2", "init_std_conv3", "init_std_fc10"] {
            c.set(p, Float(1e-2));
        }
        c.set("lrn_scale", Float(1e-4));
        c.set("lrn_power", Float(0.9));
        c.set("batch_size", Int(128));
        let (q, diverged) = w.quality(&c);
        assert!(!diverged);
        assert!(q > 0.9, "ideal config quality {q}");
        let p = w.profile(&c, 4);
        assert!(p.final_value() > 0.75, "ideal config reached {}", p.final_value());
    }
}

#[cfg(test)]
mod calibration_probe {
    use super::*;
    // Diagnostic probe, not a regression test: prints the sampled quality
    // distribution so a human can re-calibrate the surface kernels (see
    // DESIGN.md §4). It asserts nothing and samples 4000 configs, so it
    // stays ignored; run it explicitly with
    // `cargo test -p hyperdrive-workload print_q_quantiles -- --ignored --nocapture`.
    #[test]
    #[ignore = "diagnostic probe: prints quality quantiles for manual calibration"]
    fn print_q_quantiles() {
        let w = CifarWorkload::new();
        let mut rng = StdRng::seed_from_u64(2024);
        let mut qs: Vec<f64> = Vec::new();
        let mut div = 0;
        for _ in 0..4000 {
            let c = w.space().sample(&mut rng);
            let (q, d) = w.quality(&c);
            if d {
                div += 1;
            } else {
                qs.push(q);
            }
        }
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        eprintln!("diverged={}", div as f64 / 4000.0);
        for p in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.97, 0.99, 1.0] {
            let i = ((qs.len() - 1) as f64 * p) as usize;
            eprintln!("q[{p}] = {}", qs[i]);
        }
    }
}
