//! Virtual-time accounting of prediction overhead.
//!
//! §5.2 motivates overlapping training and prediction because curve fits
//! are expensive. The simulator prices that expense with POP's
//! [`FitCostModel`]: each boundary decision charges the modeled makespan
//! of its fit batch to the decided job's virtual clock. These tests pin
//! the model's contract — the charge shows up on the clock, scheduling
//! decisions stay put, and *physical* fit-thread counts remain invisible.

use hyperdrive_core::{FitCostModel, PopConfig, PopPolicy};
use hyperdrive_curve::PredictorConfig;
use hyperdrive_framework::{ExperimentSpec, ExperimentWorkload};
use hyperdrive_sim::run_sim;
use hyperdrive_types::SimTime;
use hyperdrive_workload::CifarWorkload;

fn run(fit_cost: Option<FitCostModel>, fit_threads: usize) -> (SimTime, u64, usize, Vec<u8>) {
    let w = CifarWorkload::new().with_max_epochs(40);
    let ew = ExperimentWorkload::from_workload(&w, 8, 5);
    // Tmax far beyond the run length: the remaining budget never binds the
    // extrapolation horizon, so overhead shifts *times* without changing
    // *decisions* and the epoch counts below can be compared exactly.
    let spec =
        ExperimentSpec::new(2).with_stop_on_target(false).with_tmax(SimTime::from_hours(200.0));
    let mut pop = PopPolicy::with_config(PopConfig {
        predictor: PredictorConfig::test(),
        fit_threads,
        fit_cost,
        ..Default::default()
    });
    let r = run_sim(&mut pop, &ew, spec);
    let mut csv = Vec::new();
    r.events.write_csv(&mut csv).expect("event log serializes");
    (r.end_time, r.total_epochs, r.terminated_early(), csv)
}

const COST: f64 = 0.8; // modeled seconds per kiloeval: hefty enough to see

#[test]
fn modeled_overhead_extends_the_virtual_clock() {
    let free = run(None, 2);
    let serial = run(
        Some(FitCostModel {
            secs_per_kiloeval: COST,
            modeled_workers: 1,
            fast_math_speedup: 1.0,
            batch_fit_speedup: 1.0,
        }),
        2,
    );
    assert!(serial.0 > free.0, "charged fits must lengthen the run: {} vs {}", serial.0, free.0);
    assert_eq!(
        (serial.1, serial.2),
        (free.1, free.2),
        "pricing fits must not change what gets scheduled or killed"
    );
}

#[test]
fn overhead_scales_with_modeled_cost() {
    let cheap = run(
        Some(FitCostModel {
            secs_per_kiloeval: COST,
            modeled_workers: 1,
            fast_math_speedup: 1.0,
            batch_fit_speedup: 1.0,
        }),
        2,
    );
    let dear = run(
        Some(FitCostModel {
            secs_per_kiloeval: 2.0 * COST,
            modeled_workers: 1,
            fast_math_speedup: 1.0,
            batch_fit_speedup: 1.0,
        }),
        2,
    );
    assert!(
        dear.0 > cheap.0,
        "doubling the per-eval price must lengthen the run: {} vs {}",
        dear.0,
        cheap.0
    );
    assert_eq!((cheap.1, cheap.2), (dear.1, dear.2), "only times move, not decisions");
}

#[test]
fn modeled_workers_never_lengthen_the_run() {
    // In steady state the cache keeps batches down to one fresh fit (only
    // the reporting job's prefix advanced), so extra modeled workers often
    // change nothing — but they must never make a batch *slower*. The
    // multi-fit makespan math itself is pinned by FitCostModel's unit
    // tests in hyperdrive-core.
    let serial = run(
        Some(FitCostModel {
            secs_per_kiloeval: COST,
            modeled_workers: 1,
            fast_math_speedup: 1.0,
            batch_fit_speedup: 1.0,
        }),
        2,
    );
    let pooled = run(
        Some(FitCostModel {
            secs_per_kiloeval: COST,
            modeled_workers: 4,
            fast_math_speedup: 1.0,
            batch_fit_speedup: 1.0,
        }),
        2,
    );
    assert!(
        pooled.0 <= serial.0,
        "modeled workers lengthened the run: {} vs {}",
        pooled.0,
        serial.0
    );
    assert_eq!((serial.1, serial.2), (pooled.1, pooled.2), "only times move, not decisions");
}

#[test]
fn modeled_cost_is_invariant_to_physical_thread_count() {
    // The whole point of splitting `modeled_workers` from `fit_threads`:
    // the virtual timeline is a function of the model, never of how many
    // OS threads actually ran the fits.
    let model = Some(FitCostModel {
        secs_per_kiloeval: COST,
        modeled_workers: 2,
        fast_math_speedup: 1.0,
        batch_fit_speedup: 1.0,
    });
    assert_eq!(run(model, 1), run(model, 4));
}

#[test]
fn shared_fit_cache_is_invisible_to_the_virtual_timeline() {
    // The shared content-addressed cache reports its hits as `cached:
    // false`, so FitCostModel prices a replayed batch exactly like the
    // cold batch it memoized: end times, epochs, kills, and the full
    // event log must be byte-identical with the cache absent, freshly
    // attached, or fully warmed — even though the warmed run executes
    // zero fits.
    let run_with = |cache: Option<std::sync::Arc<hyperdrive_curve::SharedFitCache>>| {
        let w = CifarWorkload::new().with_max_epochs(40);
        let ew = ExperimentWorkload::from_workload(&w, 8, 5);
        let spec =
            ExperimentSpec::new(2).with_stop_on_target(false).with_tmax(SimTime::from_hours(200.0));
        let mut pop = PopPolicy::with_config_and_cache(
            PopConfig {
                predictor: PredictorConfig::test(),
                fit_threads: 2,
                fit_cost: Some(FitCostModel {
                    secs_per_kiloeval: COST,
                    modeled_workers: 2,
                    fast_math_speedup: 1.0,
                    batch_fit_speedup: 1.0,
                }),
                ..Default::default()
            },
            cache,
        );
        let r = run_sim(&mut pop, &ew, spec);
        let mut csv = Vec::new();
        r.events.write_csv(&mut csv).expect("event log serializes");
        (r.end_time, r.total_epochs, r.terminated_early(), csv, r.fit_cache)
    };

    let cache = hyperdrive_curve::SharedFitCache::in_memory();
    let uncached = run_with(None);
    let cold = run_with(Some(cache.clone()));
    let warmed = run_with(Some(cache));
    assert_eq!(
        (&uncached.0, &uncached.1, &uncached.2, &uncached.3),
        (&cold.0, &cold.1, &cold.2, &cold.3),
        "attaching the cache must not move the timeline"
    );
    assert_eq!(
        (&cold.0, &cold.1, &cold.2, &cold.3),
        (&warmed.0, &warmed.1, &warmed.2, &warmed.3),
        "a fully warmed replay must be byte-identical"
    );

    let cold_snap = cold.4.expect("POP reports fit-cache counters");
    let warm_snap = warmed.4.expect("POP reports fit-cache counters");
    assert!(cold_snap.fits > 0, "the cold run actually fit curves");
    assert_eq!(warm_snap.fits, 0, "the warmed replay must not fit anything");
    assert_eq!(
        warm_snap.shared_hits,
        cold_snap.fits + cold_snap.shared_hits,
        "every prediction in the replay came from the shared cache"
    );
}
