//! Step-by-step simulation driving.
//!
//! [`run_sim`](crate::run_sim) executes an experiment to completion in one
//! call. [`Simulation`] exposes the same discrete-event loop one event at a
//! time, so callers can inspect scheduler state between events — for
//! debugging policies, teaching, recording custom telemetry, or embedding
//! the simulator in an outer control loop.
//!
//! # Example
//!
//! ```
//! use hyperdrive_framework::{DefaultPolicy, ExperimentSpec, ExperimentWorkload};
//! use hyperdrive_sim::Simulation;
//! use hyperdrive_workload::CifarWorkload;
//!
//! let workload = CifarWorkload::new().with_max_epochs(3);
//! let experiment = ExperimentWorkload::from_workload(&workload, 4, 1);
//! let mut policy = DefaultPolicy::new();
//! let mut sim = Simulation::new(
//!     &mut policy,
//!     &experiment,
//!     ExperimentSpec::new(2).with_stop_on_target(false),
//! );
//! let mut steps: u64 = 0;
//! while sim.step().is_some() {
//!     steps += 1;
//! }
//! let result = sim.finish();
//! assert_eq!(u64::from(steps), result.total_epochs);
//! ```

use hyperdrive_framework::{
    Command, EngineEvent, ExperimentEngine, ExperimentResult, ExperimentSpec, ExperimentWorkload,
    SchedulingPolicy,
};
use hyperdrive_types::SimTime;

use crate::queue::EventQueue;

/// What one [`Simulation::step`] processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// The event that was delivered to the engine.
    pub event: EngineEvent,
    /// The virtual time at which it occurred.
    pub time: SimTime,
}

/// A resumable, inspectable discrete-event simulation of one experiment.
pub struct Simulation<'w, 'p> {
    engine: ExperimentEngine<'w, 'p>,
    queue: EventQueue<EngineEvent>,
    now: SimTime,
    stopping: bool,
    /// Reusable command buffer: the engine writes each event's follow-up
    /// batch here, so the steady-state step path allocates nothing.
    cmds: Vec<Command>,
}

impl<'w, 'p> Simulation<'w, 'p> {
    /// Sets up the simulation and schedules the initial job starts.
    pub fn new(
        policy: &'p mut dyn SchedulingPolicy,
        workload: &'w ExperimentWorkload,
        spec: ExperimentSpec,
    ) -> Self {
        let mut engine = ExperimentEngine::new(policy, workload, spec);
        // Worst-case heap occupancy without fault injection: each job
        // holds at most one outstanding command (RunEpoch *or* Suspend,
        // never both) and no token ever goes stale, so at most one future
        // event per job is ever queued, plus nothing for Stop (it is not
        // enqueued). One extra slot keeps a full cluster's simultaneous
        // batch from landing exactly on capacity. Executors that inject
        // faults must also budget for orphaned (stale-token) events — see
        // `faults.rs`.
        let mut queue = EventQueue::with_capacity(workload.len() + 1);
        let now = SimTime::ZERO;
        let mut cmds = Vec::new();
        engine.start_into(&mut cmds);
        let stopping = schedule(&cmds, now, &mut queue);
        Simulation { engine, queue, now, stopping, cmds }
    }

    /// Processes the next pending event. Returns `None` once the
    /// experiment has stopped (goal, `Tmax`, or all work drained).
    pub fn step(&mut self) -> Option<StepOutcome> {
        if self.stopping {
            return None;
        }
        let (t, event) = self.queue.pop()?;
        self.now = t;
        self.engine.handle_into(event, t, &mut self.cmds);
        self.stopping = schedule(&self.cmds, t, &mut self.queue) || self.engine.stopped();
        Some(StepOutcome { event, time: t })
    }

    /// Runs at most `n` steps, returning how many were processed.
    pub fn step_n(&mut self, n: usize) -> usize {
        (0..n).take_while(|_| self.step().is_some()).count()
    }

    /// Runs until the virtual clock reaches `until` (or the experiment
    /// stops), returning the number of events processed.
    pub fn run_until(&mut self, until: SimTime) -> usize {
        let mut processed = 0;
        while !self.stopping {
            match self.queue.peek_time() {
                Some(t) if t <= until => {
                    if self.step().is_none() {
                        break;
                    }
                    processed += 1;
                }
                _ => break,
            }
        }
        processed
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the future-event queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// True once the experiment has stopped.
    pub fn stopped(&self) -> bool {
        self.stopping || self.queue.is_empty()
    }

    /// Consumes the simulation and produces the experiment result.
    pub fn finish(self) -> ExperimentResult {
        self.engine.into_result(self.now)
    }
}

/// Translates engine commands into future completion events (echoing each
/// command's token), returning whether a `Stop` was seen. Shared by
/// [`run_sim`](crate::run_sim) and [`Simulation`].
pub(crate) fn schedule(
    cmds: &[Command],
    now: SimTime,
    queue: &mut EventQueue<EngineEvent>,
) -> bool {
    let mut stop = false;
    for cmd in cmds {
        match *cmd {
            Command::RunEpoch { job, duration, token, .. } => {
                queue.schedule(now + duration, EngineEvent::EpochDone { job, token });
            }
            Command::Suspend { job, latency, token, .. } => {
                queue.schedule(now + latency, EngineEvent::SuspendDone { job, token });
            }
            Command::Stop => stop = true,
        }
    }
    stop
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_sim;
    use hyperdrive_framework::DefaultPolicy;
    use hyperdrive_workload::CifarWorkload;

    fn experiment(n: usize, epochs: u32) -> ExperimentWorkload {
        let w = CifarWorkload::new().with_max_epochs(epochs);
        ExperimentWorkload::from_workload(&w, n, 3)
    }

    #[test]
    fn stepping_matches_run_sim_exactly() {
        let ew = experiment(6, 5);
        let spec = ExperimentSpec::new(2).with_stop_on_target(false).with_seed(9);

        let mut p1 = DefaultPolicy::new();
        let direct = run_sim(&mut p1, &ew, spec);

        let mut p2 = DefaultPolicy::new();
        let mut sim = Simulation::new(&mut p2, &ew, spec);
        while sim.step().is_some() {}
        let stepped = sim.finish();

        assert_eq!(direct.end_time, stepped.end_time);
        assert_eq!(direct.total_epochs, stepped.total_epochs);
        for (a, b) in direct.outcomes.iter().zip(&stepped.outcomes) {
            assert_eq!(a.epochs, b.epochs);
            assert_eq!(a.busy_time, b.busy_time);
        }
    }

    #[test]
    fn events_arrive_in_time_order() {
        let ew = experiment(5, 4);
        let mut policy = DefaultPolicy::new();
        let mut sim =
            Simulation::new(&mut policy, &ew, ExperimentSpec::new(2).with_stop_on_target(false));
        let mut last = SimTime::ZERO;
        while let Some(step) = sim.step() {
            assert!(step.time >= last, "time went backwards");
            last = step.time;
            assert_eq!(sim.now(), step.time);
        }
        assert!(sim.stopped());
    }

    #[test]
    fn run_until_respects_the_clock() {
        let ew = experiment(4, 10);
        let mut policy = DefaultPolicy::new();
        let mut sim =
            Simulation::new(&mut policy, &ew, ExperimentSpec::new(2).with_stop_on_target(false));
        let horizon = SimTime::from_mins(10.0);
        sim.run_until(horizon);
        assert!(sim.now() <= horizon);
        // Remaining events are all beyond the horizon.
        assert!(sim.pending_events() > 0);
        // Continue to completion.
        while sim.step().is_some() {}
        let result = sim.finish();
        assert_eq!(result.total_epochs, 4 * 10);
    }

    #[test]
    fn step_n_counts_processed_events() {
        let ew = experiment(3, 4);
        let mut policy = DefaultPolicy::new();
        let mut sim =
            Simulation::new(&mut policy, &ew, ExperimentSpec::new(1).with_stop_on_target(false));
        assert_eq!(sim.step_n(5), 5);
        let rest = sim.step_n(1_000);
        assert_eq!(5 + rest, 12, "3 jobs x 4 epochs in total");
        assert_eq!(sim.step_n(10), 0, "no events after completion");
    }

    #[test]
    fn stop_on_target_halts_stepping() {
        let ew = experiment(4, 20).with_target(0.05);
        let mut policy = DefaultPolicy::new();
        let mut sim = Simulation::new(&mut policy, &ew, ExperimentSpec::new(2));
        while sim.step().is_some() {}
        let result = sim.finish();
        assert!(result.reached_target());
    }
}
