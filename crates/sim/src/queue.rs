//! A deterministic future-event queue.
//!
//! Events are ordered by time, with a monotonically increasing sequence
//! number breaking ties — so two events scheduled for the same instant pop
//! in scheduling order, and simulator runs are bit-for-bit reproducible.
//!
//! The backing store is a hand-rolled 4-ary min-heap rather than
//! `std::collections::BinaryHeap`: at 10k+ machines the queue holds one
//! pending event per running job, sift paths dominate the simulator's
//! per-event cost, and a 4-ary layout halves the depth while keeping all
//! four children of a node within two cache lines. The `(time, seq)` key
//! is a *strict* total order (seq is unique), so every correct heap pops
//! the exact same sequence — swapping the arity cannot change a trace.

use hyperdrive_types::SimTime;

/// Children per node. Four halves tree depth vs a binary heap and keeps
/// sibling scans cache-local, the sweet spot for pop-heavy workloads.
const ARITY: usize = 4;

/// A time-ordered queue of future events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: Vec<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// The strict total order popped: earliest time first, scheduling
    /// order within a timestamp. `seq` is unique, so no two entries
    /// compare equal.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `capacity` pending events
    /// before the backing heap reallocates. The stepper sizes its queue
    /// from the job count up front so steady-state scheduling never grows
    /// the heap.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue { heap: Vec::with_capacity(capacity), seq: 0 }
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is negative.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= SimTime::ZERO, "cannot schedule in negative time");
        self.heap.push(Entry { time: at, seq: self.seq, event });
        self.seq += 1;
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event with its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let len = self.heap.len();
        if len == 0 {
            return None;
        }
        self.heap.swap(0, len - 1);
        let e = self.heap.pop().expect("heap is non-empty");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((e.time, e.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.time)
    }

    /// Moves the entry at `i` toward the root until its parent is smaller.
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.heap[parent].key() <= self.heap[i].key() {
                break;
            }
            self.heap.swap(parent, i);
            i = parent;
        }
    }

    /// Moves the entry at `i` toward the leaves, swapping with its
    /// smallest child while one orders before it.
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first = i * ARITY + 1;
            if first >= len {
                return;
            }
            let mut min = first;
            let mut min_key = self.heap[first].key();
            for c in (first + 1)..(first + ARITY).min(len) {
                let k = self.heap[c].key();
                if k < min_key {
                    min = c;
                    min_key = k;
                }
            }
            if self.heap[i].key() <= min_key {
                return;
            }
            self.heap.swap(i, min);
            i = min;
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), "b");
        q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(9.0), "c");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(5.0), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(9.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(3.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn with_capacity_preallocates() {
        let q: EventQueue<()> = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        assert!(q.is_empty());
        let fresh: EventQueue<()> = EventQueue::new();
        assert!(fresh.is_empty());
    }

    #[test]
    #[should_panic(expected = "negative time")]
    fn negative_time_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(-1.0), ());
    }

    #[cfg(test)]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn popped_times_are_nondecreasing(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
                let mut q = EventQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.schedule(SimTime::from_secs(*t), i);
                }
                let mut last = SimTime::ZERO;
                let mut count = 0;
                while let Some((t, _)) = q.pop() {
                    prop_assert!(t >= last);
                    last = t;
                    count += 1;
                }
                prop_assert_eq!(count, times.len());
            }

            /// The determinism pin the golden traces rely on, stated
            /// directly: pops are time-ordered, and events scheduled for
            /// the *same* instant come out in scheduling (FIFO) order.
            /// Coarse discrete times force heavy timestamp collisions, so
            /// every run exercises the tie-break, not just the ordering.
            #[test]
            fn equal_timestamps_pop_in_stable_fifo_order(
                times in proptest::collection::vec(0u8..8, 1..300),
            ) {
                let mut q = EventQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.schedule(SimTime::from_secs(f64::from(*t)), i);
                }
                // Payloads are insertion indices, so within a timestamp
                // the indices must come out strictly increasing.
                let mut last: Option<(SimTime, usize)> = None;
                let mut popped = 0;
                while let Some((t, i)) = q.pop() {
                    if let Some((prev_t, prev_i)) = last {
                        prop_assert!(t >= prev_t, "time order broke: {t:?} after {prev_t:?}");
                        if t == prev_t {
                            prop_assert!(
                                i > prev_i,
                                "FIFO tie-break broke at {t:?}: {i} popped after {prev_i}"
                            );
                        }
                    }
                    prop_assert_eq!(times[i], (t.as_secs() as u8), "payload/time pairing held");
                    last = Some((t, i));
                    popped += 1;
                }
                prop_assert_eq!(popped, times.len());
            }
        }
    }
}
