//! A deterministic future-event queue.
//!
//! Events are ordered by time, with a monotonically increasing sequence
//! number breaking ties — so two events scheduled for the same instant pop
//! in scheduling order, and simulator runs are bit-for-bit reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hyperdrive_types::SimTime;

/// A time-ordered queue of future events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `capacity` pending events
    /// before the backing heap reallocates. The stepper sizes its queue
    /// from the job count up front so steady-state scheduling never grows
    /// the heap.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(capacity), seq: 0 }
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is negative.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= SimTime::ZERO, "cannot schedule in negative time");
        self.heap.push(Reverse(Entry { time: at, seq: self.seq, event }));
        self.seq += 1;
    }

    /// Removes and returns the earliest event with its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), "b");
        q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(9.0), "c");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(5.0), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(9.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(3.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn with_capacity_preallocates() {
        let q: EventQueue<()> = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        assert!(q.is_empty());
        let fresh: EventQueue<()> = EventQueue::new();
        assert!(fresh.is_empty());
    }

    #[test]
    #[should_panic(expected = "negative time")]
    fn negative_time_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(-1.0), ());
    }

    #[cfg(test)]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn popped_times_are_nondecreasing(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
                let mut q = EventQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.schedule(SimTime::from_secs(*t), i);
                }
                let mut last = SimTime::ZERO;
                let mut count = 0;
                while let Some((t, _)) = q.pop() {
                    prop_assert!(t >= last);
                    last = t;
                    count += 1;
                }
                prop_assert_eq!(count, times.len());
            }
        }
    }
}
