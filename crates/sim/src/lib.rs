//! Trace-driven discrete-event simulation of HyperDrive experiments.
//!
//! §7.1 of the paper: "Simulator Engine is a trace-driven discrete event
//! simulator that accurately emulates the execution process of HyperDrive,
//! i.e., the order of configurations and the resource management logic",
//! with a "Pluggable Scheduling Policy". This crate is that engine: it
//! drives the same [`ExperimentEngine`] (and therefore the same Resource
//! Manager / Job Manager / SAP up-calls) as the live executor, but elapses
//! commands on a virtual clock, making runs deterministic and thousands of
//! times faster than wall-clock execution.
//!
//! Feed it synthetic workloads (`ExperimentWorkload::from_workload`) or
//! recorded traces (`ExperimentWorkload::from_traces`) — the latter is the
//! paper's configuration for all of §7's sensitivity analyses.
//!
//! # Example
//!
//! ```
//! use hyperdrive_framework::{DefaultPolicy, ExperimentSpec, ExperimentWorkload};
//! use hyperdrive_sim::run_sim;
//! use hyperdrive_workload::CifarWorkload;
//!
//! let workload = CifarWorkload::new().with_max_epochs(5);
//! let experiment = ExperimentWorkload::from_workload(&workload, 8, 42);
//! let mut policy = DefaultPolicy::new();
//! let result = run_sim(&mut policy, &experiment, ExperimentSpec::new(4));
//! assert!(result.end_time > hyperdrive_types::SimTime::ZERO);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod faults;
mod queue;
mod recovery;
mod stepper;

pub use faults::run_sim_with_faults;
pub use queue::EventQueue;
pub use recovery::{
    kill_at_every_event, resume_sim_journaled, run_sim_journaled, run_sim_with_recovery,
    KillAnywhereReport, SimRunOutcome,
};
pub use stepper::{Simulation, StepOutcome};

use hyperdrive_framework::{
    EngineEvent, ExperimentEngine, ExperimentResult, ExperimentSpec, ExperimentWorkload,
    SchedulingPolicy,
};
use hyperdrive_types::SimTime;

/// Runs one experiment to completion on the virtual clock.
///
/// Identical semantics to [`hyperdrive_framework::run_live`] up to event
/// ordering: the simulator resolves simultaneous completions
/// deterministically (schedule order), while the live executor resolves
/// them by thread timing. Fig 12a quantifies the resulting gap.
pub fn run_sim(
    policy: &mut dyn SchedulingPolicy,
    workload: &ExperimentWorkload,
    spec: ExperimentSpec,
) -> ExperimentResult {
    let mut engine = ExperimentEngine::new(policy, workload, spec);
    // Without fault injection each job holds at most one outstanding
    // command, so at most one future event per job is ever queued (see
    // `Simulation::new` for the full argument): this sizing means the heap
    // never reallocates mid-run.
    let mut queue: EventQueue<EngineEvent> = EventQueue::with_capacity(workload.len() + 1);
    let mut now = SimTime::ZERO;

    // One reusable command buffer for the whole run: together with the
    // engine's internal reservations this makes the steady-state event
    // loop allocation-free (pinned by the `sim_scale` bench).
    let mut cmds = Vec::new();
    engine.start_into(&mut cmds);
    let mut stopping = stepper::schedule(&cmds, now, &mut queue);
    while !stopping {
        let Some((t, event)) = queue.pop() else {
            break; // all jobs finished
        };
        now = t;
        engine.handle_into(event, now, &mut cmds);
        stopping = stepper::schedule(&cmds, now, &mut queue) || engine.stopped();
    }
    engine.into_result(now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperdrive_framework::{DefaultPolicy, JobEnd};
    use hyperdrive_workload::{CifarWorkload, LunarWorkload, TraceSet, Workload};

    fn cifar_experiment(n: usize, epochs: u32, seed: u64) -> ExperimentWorkload {
        let w = CifarWorkload::new().with_max_epochs(epochs);
        ExperimentWorkload::from_workload(&w, n, seed)
    }

    #[test]
    fn default_policy_runs_everything() {
        let ew = cifar_experiment(6, 4, 1);
        let mut policy = DefaultPolicy::new();
        let spec = ExperimentSpec::new(2).with_stop_on_target(false);
        let result = run_sim(&mut policy, &ew, spec);
        assert_eq!(result.total_epochs, 6 * 4);
        assert!(result.outcomes.iter().all(|o| o.end == JobEnd::Completed));
        // With 2 machines and 6 jobs of ~4 minutes the experiment spans
        // roughly 12 job-minutes of work per machine.
        assert!(result.end_time > SimTime::from_mins(8.0));
    }

    #[test]
    fn simulation_is_deterministic() {
        let ew = cifar_experiment(10, 6, 3);
        let spec = ExperimentSpec::new(3).with_stop_on_target(false).with_seed(9);
        let mut p1 = DefaultPolicy::new();
        let r1 = run_sim(&mut p1, &ew, spec);
        let mut p2 = DefaultPolicy::new();
        let r2 = run_sim(&mut p2, &ew, spec);
        assert_eq!(r1.end_time, r2.end_time);
        assert_eq!(r1.total_epochs, r2.total_epochs);
        for (a, b) in r1.outcomes.iter().zip(&r2.outcomes) {
            assert_eq!(a.epochs, b.epochs);
            assert_eq!(a.busy_time, b.busy_time);
        }
    }

    #[test]
    fn stops_at_target() {
        let ew = cifar_experiment(6, 20, 1).with_target(0.05);
        let mut policy = DefaultPolicy::new();
        let result = run_sim(&mut policy, &ew, ExperimentSpec::new(2));
        assert!(result.reached_target());
        assert!(result.time_to_target.unwrap() <= result.end_time);
        assert!(result.total_epochs < 120, "stopped before exhaustive execution");
    }

    #[test]
    fn respects_tmax() {
        let ew = cifar_experiment(4, 500, 1);
        let mut policy = DefaultPolicy::new();
        let spec =
            ExperimentSpec::new(1).with_tmax(SimTime::from_mins(10.0)).with_stop_on_target(false);
        let result = run_sim(&mut policy, &ew, spec);
        assert!(!result.reached_target() || result.time_to_target.unwrap() <= spec.tmax);
        assert!(result.end_time >= SimTime::from_mins(10.0));
        assert!(result.end_time < SimTime::from_mins(15.0), "stops promptly after Tmax");
    }

    #[test]
    fn trace_replay_matches_direct_generation() {
        // §7.1: traces collected from runs replay identically.
        let w = CifarWorkload::new().with_max_epochs(6);
        let traces = TraceSet::generate(&w, 5, 11);
        let from_traces = ExperimentWorkload::from_traces(
            &traces,
            w.domain_knowledge(),
            w.eval_boundary(),
            0.77,
            w.suspend_model(),
        );
        let direct = ExperimentWorkload::from_workload(&w, 5, 11);
        let spec = ExperimentSpec::new(2).with_stop_on_target(false);
        let mut p1 = DefaultPolicy::new();
        let r1 = run_sim(&mut p1, &from_traces, spec);
        let mut p2 = DefaultPolicy::new();
        let r2 = run_sim(&mut p2, &direct, spec);
        assert_eq!(r1.total_epochs, r2.total_epochs);
        assert!((r1.end_time.as_secs() - r2.end_time.as_secs()).abs() < 1e-6);
    }

    #[test]
    fn lunar_workload_runs() {
        let w = LunarWorkload::new().with_max_blocks(10);
        let ew = ExperimentWorkload::from_workload(&w, 5, 2);
        let mut policy = DefaultPolicy::new();
        let spec = ExperimentSpec::new(3).with_stop_on_target(false);
        let result = run_sim(&mut policy, &ew, spec);
        assert_eq!(result.total_epochs, 50);
    }

    #[test]
    fn sim_agrees_with_live_executor() {
        // Fig 12a in miniature: same workload, same policy, both executors;
        // virtual end times should agree closely (the paper reports max
        // error 13%; Default policy with no suspends should be much
        // tighter, modulo sleep overshoot in the live backend).
        let ew = cifar_experiment(4, 3, 21);
        let spec = ExperimentSpec::new(2).with_stop_on_target(false);
        let mut p_sim = DefaultPolicy::new();
        let sim = run_sim(&mut p_sim, &ew, spec);
        // 10000x (6ms epochs, not 1ms) keeps sleep overshoot small
        // relative to epoch length even on a loaded test machine. A burst
        // of host load (e.g. the rest of the workspace's test binaries)
        // can still push overshoot past the bound, so retry once before
        // declaring divergence: a real sim/live mismatch fails both times.
        let mut err = f64::INFINITY;
        for _attempt in 0..2 {
            let mut p_live = DefaultPolicy::new();
            let live = hyperdrive_framework::run_live(&mut p_live, &ew, spec, 10_000.0);
            assert_eq!(sim.total_epochs, live.total_epochs);
            err = (sim.end_time.as_secs() - live.end_time.as_secs()).abs() / sim.end_time.as_secs();
            if err < 0.25 {
                return;
            }
        }
        panic!("sim/live end times diverged twice (relative error {err})");
    }
}
