//! Crash-consistent simulation: journaled runs and kill-anywhere recovery.
//!
//! [`run_sim_journaled`] is [`run_sim_with_faults`](crate::run_sim_with_faults)
//! with an explicit write-ahead [`Journal`] and an optional simulated
//! process crash: once the engine has journaled `crash_after` inputs the
//! run stops dead — no seal, no result — exactly as if the scheduler
//! process had been killed. [`resume_sim_journaled`] is the other half:
//! it replays the journal through a fresh engine and policy
//! ([`ExperimentEngine::recover`]), rebuilds the future-event queue by
//! re-scheduling every regenerated command batch (the events the dead
//! process already consumed come back off the front in exactly the
//! original order, and are verified against the journal), and then runs
//! the standard loop to completion. The recovered trace is byte-identical
//! to an uninterrupted run — [`kill_at_every_event`] proves it by
//! crashing at *every* journal position.
//!
//! [`run_sim_with_recovery`] honours
//! [`FaultKind::EngineCrash`] events in a fault plan: each one kills and
//! recovers the in-process scheduler at its journal position, chaining
//! through multiple crashes in one call.

use hyperdrive_framework::{
    Command, ExperimentEngine, ExperimentResult, ExperimentSpec, ExperimentWorkload, FaultKind,
    FaultPlan, FaultStats, Journal, RecoveredJournal, ReplayInput, SchedulingPolicy,
};
use hyperdrive_types::{Error, Result, SimTime};

use crate::faults::{schedule_faulty, ReplyFaults, SimEvent};
use crate::queue::EventQueue;

/// What a journaled simulation produced.
#[derive(Debug)]
pub struct SimRunOutcome {
    /// The completed experiment — `None` if the simulated crash fired
    /// first and the run died mid-flight.
    pub result: Option<ExperimentResult>,
    /// Engine inputs journaled before the run ended. This is the
    /// coordinate space of crash positions: killing at position `k` means
    /// dying right after the engine consumed its `k`-th input.
    pub inputs: u64,
}

/// Worst-case future-event-queue occupancy under this plan — same bound as
/// the plain fault executor (see `run_sim_with_faults`): one live event per
/// job plus at most one stale token per interruption, plus the plan's own
/// timed events.
fn queue_capacity(workload: &ExperimentWorkload, plan: &FaultPlan) -> usize {
    let per_job = plan.retry.max_retries as usize + 2;
    workload.len() * per_job + plan.events.len() + 1
}

/// Schedules the plan's timed machine faults into the future-event queue.
fn schedule_timed_faults(plan: &FaultPlan, queue: &mut EventQueue<SimEvent>) {
    for event in &plan.events {
        match event.kind {
            FaultKind::MachineCrash => queue.schedule(event.at, SimEvent::Crash(event.machine)),
            FaultKind::MachineRecover => {
                queue.schedule(event.at, SimEvent::Recover(event.machine));
            }
            FaultKind::AgentStall { .. }
            | FaultKind::ReplyDelay { .. }
            | FaultKind::EngineCrash { .. } => {}
        }
    }
}

/// Runs one experiment on the virtual clock, writing every engine input to
/// `journal`, optionally dying (without sealing) once `crash_after` inputs
/// have been journaled.
///
/// With [`Journal::disabled`] and `crash_after: None` this is exactly
/// [`run_sim_with_faults`](crate::run_sim_with_faults); with an enabled
/// journal the trace is still byte-identical (journaling is pure output).
pub fn run_sim_journaled(
    policy: &mut dyn SchedulingPolicy,
    workload: &ExperimentWorkload,
    spec: ExperimentSpec,
    plan: &FaultPlan,
    journal: Journal,
    crash_after: Option<u64>,
) -> SimRunOutcome {
    let mut engine = ExperimentEngine::with_journal(policy, workload, spec, plan, journal);
    if crash_after == Some(0) {
        return SimRunOutcome { result: None, inputs: 0 };
    }
    let mut queue: EventQueue<SimEvent> = EventQueue::with_capacity(queue_capacity(workload, plan));
    let mut reply_faults = ReplyFaults::from_plan(plan);
    let mut now = SimTime::ZERO;
    schedule_timed_faults(plan, &mut queue);

    let mut cmds: Vec<Command> = Vec::new();
    engine.start_into(&mut cmds);
    if crash_after.is_some_and(|k| engine.journaled_inputs() >= k) {
        return SimRunOutcome { result: None, inputs: engine.journaled_inputs() };
    }
    let mut stopping = schedule_faulty(&cmds, now, &mut queue, &mut reply_faults);
    while !stopping {
        let Some((t, sim_event)) = queue.pop() else {
            break;
        };
        now = t;
        match sim_event {
            SimEvent::Engine(event) => engine.handle_into(event, t, &mut cmds),
            SimEvent::Crash(machine) => engine.inject_machine_crash_into(machine, t, &mut cmds),
            SimEvent::Recover(machine) => {
                engine.inject_machine_recovery_into(machine, t, &mut cmds);
            }
            SimEvent::StallDetected(machine) => {
                engine.inject_agent_stall_into(machine, t, &mut cmds);
            }
        }
        // A crash at input k dies before the batch is acted on; recovery
        // regenerates and redelivers it.
        if crash_after.is_some_and(|k| engine.journaled_inputs() >= k) {
            return SimRunOutcome { result: None, inputs: engine.journaled_inputs() };
        }
        stopping = schedule_faulty(&cmds, now, &mut queue, &mut reply_faults) || engine.stopped();
        if !stopping && engine.active_job_count() == 0 {
            break;
        }
    }
    let inputs = engine.journaled_inputs();
    SimRunOutcome { result: Some(engine.into_result(now)), inputs }
}

/// Resumes a crashed journaled run to completion.
///
/// `policy` must be a *fresh* instance of the same policy the dead process
/// ran — replay drives it through every historical up-call, rebuilding its
/// internal state alongside the engine's.
///
/// # Errors
///
/// [`Error::JournalDiverged`] if replay regenerates different records than
/// the journal holds, or if the rebuilt event queue disagrees with the
/// journaled input order (wrong policy, workload, spec, or plan).
pub fn resume_sim_journaled(
    policy: &mut dyn SchedulingPolicy,
    workload: &ExperimentWorkload,
    spec: ExperimentSpec,
    plan: &FaultPlan,
    recovered: RecoveredJournal,
) -> Result<ExperimentResult> {
    let outcome = resume_sim_inner(policy, workload, spec, plan, recovered, None)?;
    Ok(outcome.result.expect("no crash point was armed"))
}

/// [`resume_sim_journaled`] with an optional further simulated crash, so
/// multi-crash plans can chain through recovery legs.
fn resume_sim_inner(
    policy: &mut dyn SchedulingPolicy,
    workload: &ExperimentWorkload,
    spec: ExperimentSpec,
    plan: &FaultPlan,
    recovered: RecoveredJournal,
    crash_after: Option<u64>,
) -> Result<SimRunOutcome> {
    let (mut engine, run) = ExperimentEngine::recover(policy, workload, spec, plan, recovered)?;
    let mut queue: EventQueue<SimEvent> = EventQueue::with_capacity(queue_capacity(workload, plan));
    let mut reply_faults = ReplyFaults::from_plan(plan);
    schedule_timed_faults(plan, &mut queue);

    let mut cmds: Vec<Command> = Vec::new();
    let mut stopping;
    if run.inputs.is_empty() {
        // Header-only journal (the process died before `start()` was
        // recorded): this is simply a fresh journaled run.
        engine.start_into(&mut cmds);
        if crash_after.is_some_and(|k| engine.journaled_inputs() >= k) {
            return Ok(SimRunOutcome { result: None, inputs: engine.journaled_inputs() });
        }
        stopping = schedule_faulty(&cmds, SimTime::ZERO, &mut queue, &mut reply_faults);
    } else {
        // Re-schedule every regenerated command batch in original order.
        // The queue's (time, seq) ordering is deterministic, so the
        // events the dead process already consumed come off the front as
        // an exact prefix — pop and verify them against the journal.
        stopping = false;
        for (at, batch) in &run.batches {
            stopping |= schedule_faulty(batch, *at, &mut queue, &mut reply_faults);
        }
        for (i, input) in run.inputs.iter().enumerate().skip(1) {
            let Some((t, ev)) = queue.pop() else {
                return Err(Error::JournalDiverged {
                    record: i as u64,
                    detail: "rebuilt event queue ran dry before the journaled inputs were consumed"
                        .into(),
                });
            };
            if !input_matches(input, t, ev) {
                return Err(Error::JournalDiverged {
                    record: i as u64,
                    detail: format!(
                        "rebuilt event queue produced {ev:?} at {t:?} where the journal \
                         recorded {input:?}"
                    ),
                });
            }
        }
        stopping = stopping || engine.stopped();
        if crash_after.is_some_and(|k| engine.journaled_inputs() >= k) {
            return Ok(SimRunOutcome { result: None, inputs: engine.journaled_inputs() });
        }
        // The interrupted iteration's bottom-of-loop check.
        if !stopping && engine.active_job_count() == 0 {
            let inputs = engine.journaled_inputs();
            return Ok(SimRunOutcome { result: Some(engine.into_result(run.now)), inputs });
        }
    }

    let mut now = run.now;
    while !stopping {
        let Some((t, sim_event)) = queue.pop() else {
            break;
        };
        now = t;
        match sim_event {
            SimEvent::Engine(event) => engine.handle_into(event, t, &mut cmds),
            SimEvent::Crash(machine) => engine.inject_machine_crash_into(machine, t, &mut cmds),
            SimEvent::Recover(machine) => {
                engine.inject_machine_recovery_into(machine, t, &mut cmds);
            }
            SimEvent::StallDetected(machine) => {
                engine.inject_agent_stall_into(machine, t, &mut cmds);
            }
        }
        if crash_after.is_some_and(|k| engine.journaled_inputs() >= k) {
            return Ok(SimRunOutcome { result: None, inputs: engine.journaled_inputs() });
        }
        stopping = schedule_faulty(&cmds, now, &mut queue, &mut reply_faults) || engine.stopped();
        if !stopping && engine.active_job_count() == 0 {
            break;
        }
    }
    let inputs = engine.journaled_inputs();
    Ok(SimRunOutcome { result: Some(engine.into_result(now)), inputs })
}

/// Does a popped simulator event match the journaled input at this
/// position?
fn input_matches(input: &ReplayInput, t: SimTime, ev: SimEvent) -> bool {
    match (*input, ev) {
        (ReplayInput::Event { event, now }, SimEvent::Engine(e)) => e == event && t == now,
        (ReplayInput::MachineCrash { machine, now }, SimEvent::Crash(m)) => {
            m == machine && t == now
        }
        (ReplayInput::MachineRecovery { machine, now }, SimEvent::Recover(m)) => {
            m == machine && t == now
        }
        (ReplayInput::AgentStall { machine, now }, SimEvent::StallDetected(m)) => {
            m == machine && t == now
        }
        _ => false,
    }
}

/// Runs an experiment whose fault plan may contain
/// [`FaultKind::EngineCrash`] events: the in-process scheduler is killed
/// at each crash position and recovered from its journal, chaining through
/// as many crashes as the plan schedules.
///
/// `make_policy` must build a fresh instance of the same policy each time
/// it is called — one per process lifetime (initial run plus one per
/// recovery).
///
/// # Errors
///
/// [`Error::JournalDiverged`] if any recovery leg disagrees with the
/// journal (non-deterministic policy).
pub fn run_sim_with_recovery<F>(
    mut make_policy: F,
    workload: &ExperimentWorkload,
    spec: ExperimentSpec,
    plan: &FaultPlan,
) -> Result<ExperimentResult>
where
    F: FnMut() -> Box<dyn SchedulingPolicy>,
{
    let mut crashes: Vec<u64> = plan
        .events
        .iter()
        .filter_map(|e| match e.kind {
            FaultKind::EngineCrash { at_event } => Some(at_event),
            _ => None,
        })
        .filter(|&k| k > 0)
        .collect();
    crashes.sort_unstable();
    crashes.dedup();
    let mut crash_iter = crashes.into_iter();

    let mut policy = make_policy();
    let meta = hyperdrive_framework::run_meta(policy.name(), workload, &spec, plan);
    let journal = Journal::in_memory(meta);
    let next_crash = crash_iter.next();
    let mut outcome =
        run_sim_journaled(policy.as_mut(), workload, spec, plan, journal.clone(), next_crash);
    drop(policy);
    while outcome.result.is_none() {
        // Arm the next crash strictly past the inputs already consumed;
        // stale positions can never fire again.
        let reached = outcome.inputs;
        let next_crash = crash_iter.find(|&k| k > reached);
        let recovered = journal.reopen()?;
        let mut policy = make_policy();
        outcome = resume_sim_inner(policy.as_mut(), workload, spec, plan, recovered, next_crash)?;
    }
    Ok(outcome.result.expect("loop exits only with a result"))
}

/// What [`kill_at_every_event`] measured.
#[derive(Debug)]
pub struct KillAnywhereReport {
    /// Journal inputs in the uninterrupted run — the number of crash
    /// positions exercised.
    pub positions: u64,
    /// Positions whose recovered trace was byte-identical to the
    /// uninterrupted run.
    pub passes: u64,
    /// Human-readable descriptions of every failing position (empty on a
    /// clean sweep).
    pub failures: Vec<String>,
}

/// The everything-proof: runs the experiment once uninterrupted, then — for
/// every journal position `k` — reruns it with a simulated process kill at
/// `k`, recovers from the journal with a fresh policy, and compares the
/// completed trace bytes (event CSV), end time, epoch count, and fault
/// stats against the uninterrupted run.
///
/// # Errors
///
/// Propagates journal recovery errors ([`Error::JournalDiverged`] and
/// friends); per-position mismatches are collected in the report instead.
pub fn kill_at_every_event<F>(
    mut make_policy: F,
    workload: &ExperimentWorkload,
    spec: ExperimentSpec,
    plan: &FaultPlan,
) -> Result<KillAnywhereReport>
where
    F: FnMut() -> Box<dyn SchedulingPolicy>,
{
    let mut baseline_policy = make_policy();
    let meta = hyperdrive_framework::run_meta(baseline_policy.name(), workload, &spec, plan);
    let outcome = run_sim_journaled(
        baseline_policy.as_mut(),
        workload,
        spec,
        plan,
        Journal::in_memory(meta),
        None,
    );
    drop(baseline_policy);
    let baseline = outcome.result.expect("uninterrupted run completes");
    let baseline_sig = signature(&baseline);
    let positions = outcome.inputs;

    let mut passes = 0;
    let mut failures = Vec::new();
    for k in 1..=positions {
        let journal = Journal::in_memory(meta);
        let mut victim = make_policy();
        let crashed =
            run_sim_journaled(victim.as_mut(), workload, spec, plan, journal.clone(), Some(k));
        drop(victim);
        if crashed.result.is_some() {
            failures.push(format!("position {k}: run completed before the crash fired"));
            continue;
        }
        let recovered = journal.reopen()?;
        let mut fresh = make_policy();
        match resume_sim_journaled(fresh.as_mut(), workload, spec, plan, recovered) {
            Ok(result) if signature(&result) == baseline_sig => passes += 1,
            Ok(_) => failures
                .push(format!("position {k}: recovered trace differs from the uninterrupted run")),
            Err(e) => failures.push(format!("position {k}: recovery failed: {e}")),
        }
    }
    Ok(KillAnywhereReport { positions, passes, failures })
}

/// Everything that must match for two runs to count as identical.
fn signature(result: &ExperimentResult) -> (Vec<u8>, SimTime, u64, FaultStats) {
    let mut csv = Vec::new();
    result.events.write_csv(&mut csv).expect("writing to a Vec cannot fail");
    (csv, result.end_time, result.total_epochs, result.faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_sim, run_sim_with_faults};
    use hyperdrive_core::{PopConfig, PopPolicy};
    use hyperdrive_curve::{PredictorConfig, SharedFitCache};
    use hyperdrive_framework::{DefaultPolicy, FaultConfig, FaultEvent};
    use hyperdrive_types::MachineId;
    use hyperdrive_workload::CifarWorkload;
    use proptest::prelude::*;

    fn experiment(n: usize, epochs: u32, seed: u64) -> ExperimentWorkload {
        let w = CifarWorkload::new().with_max_epochs(epochs);
        ExperimentWorkload::from_workload(&w, n, seed)
    }

    fn default_policy() -> Box<dyn SchedulingPolicy> {
        Box::new(DefaultPolicy::new())
    }

    fn fault_plan(seed: u64, intensity: f64) -> FaultPlan {
        FaultPlan::generate(
            2,
            &FaultConfig::with_intensity(seed, SimTime::from_hours(8.0), intensity),
        )
    }

    #[test]
    fn journaling_is_pure_output() {
        // An enabled journal must not perturb the run: same trace bytes as
        // the unjournaled simulators.
        let ew = experiment(5, 4, 3);
        let spec = ExperimentSpec::new(2).with_stop_on_target(false).with_seed(3);
        let plan = FaultPlan::none();
        let mut p_plain = DefaultPolicy::new();
        let plain = run_sim(&mut p_plain, &ew, spec);
        let mut p_journaled = DefaultPolicy::new();
        let meta = hyperdrive_framework::run_meta(p_journaled.name(), &ew, &spec, &plan);
        let outcome =
            run_sim_journaled(&mut p_journaled, &ew, spec, &plan, Journal::in_memory(meta), None);
        let journaled = outcome.result.unwrap();
        assert_eq!(signature(&plain), signature(&journaled));
        assert!(outcome.inputs > 0, "inputs were journaled");
    }

    #[test]
    fn kill_at_every_event_with_default_policy_under_faults() {
        let ew = experiment(4, 3, 7);
        let spec = ExperimentSpec::new(2).with_stop_on_target(false).with_seed(7);
        let plan = fault_plan(11, 12.0);
        assert!(!plan.is_empty(), "plan must inject faults");
        let report = kill_at_every_event(default_policy, &ew, spec, &plan).unwrap();
        assert!(report.positions > 0);
        assert_eq!(report.failures, Vec::<String>::new());
        assert_eq!(report.passes, report.positions);
    }

    #[test]
    fn kill_at_every_event_with_pop_policy_and_shared_cache() {
        // POP with warm starts, fast math, cross-curve batched fitting,
        // and a shared fit cache — the most stateful policy configuration
        // we have. A fresh policy per recovery plus replay must still land
        // byte-identical.
        let ew = experiment(4, 4, 13);
        let spec = ExperimentSpec::new(2).with_stop_on_target(false).with_seed(13);
        let plan = FaultPlan::none();
        let cache = SharedFitCache::in_memory();
        let make = move || -> Box<dyn SchedulingPolicy> {
            let predictor = PredictorConfig::test()
                .with_warm_start(true)
                .with_fast_math(true)
                .with_batch_fit(true);
            let config = PopConfig { predictor, fit_threads: 2, ..PopConfig::default() };
            Box::new(PopPolicy::with_config_and_cache(config, Some(cache.clone())))
        };
        let report = kill_at_every_event(make, &ew, spec, &plan).unwrap();
        assert!(report.positions > 0);
        assert_eq!(report.failures, Vec::<String>::new());
        assert_eq!(report.passes, report.positions);
    }

    #[test]
    fn engine_crash_events_in_a_plan_recover_transparently() {
        // EngineCrash events kill and recover the scheduler mid-run; the
        // completed trace must match a run without the process crashes.
        let ew = experiment(5, 4, 19);
        let spec = ExperimentSpec::new(2).with_stop_on_target(false).with_seed(19);
        let mut plan = fault_plan(23, 8.0);
        for at_event in [3, 9, 20] {
            plan.events.push(FaultEvent {
                at: SimTime::ZERO,
                machine: MachineId::new(0),
                kind: FaultKind::EngineCrash { at_event },
            });
        }
        let mut p_baseline = DefaultPolicy::new();
        let baseline = run_sim_with_faults(&mut p_baseline, &ew, spec, &plan);
        let recovered = run_sim_with_recovery(default_policy, &ew, spec, &plan).unwrap();
        assert_eq!(signature(&baseline), signature(&recovered));
    }

    #[test]
    fn resuming_with_wrong_parameters_is_a_typed_divergence() {
        let ew = experiment(4, 3, 5);
        let spec = ExperimentSpec::new(2).with_stop_on_target(false).with_seed(5);
        let plan = FaultPlan::none();
        let mut policy = DefaultPolicy::new();
        let meta = hyperdrive_framework::run_meta(policy.name(), &ew, &spec, &plan);
        let journal = Journal::in_memory(meta);
        let outcome = run_sim_journaled(&mut policy, &ew, spec, &plan, journal.clone(), Some(6));
        assert!(outcome.result.is_none(), "crash fired");
        // Resume against a different workload seed: replay regenerates
        // different records and must fail loudly, not silently corrupt.
        let wrong = experiment(4, 3, 6);
        let recovered = journal.reopen().unwrap();
        let mut fresh = DefaultPolicy::new();
        let err = resume_sim_journaled(&mut fresh, &wrong, spec, &plan, recovered).unwrap_err();
        assert!(
            matches!(err, Error::JournalDiverged { .. }),
            "expected JournalDiverged, got {err:?}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        // Crash at a random position under a random fault plan: recovery
        // is byte-identical to the uninterrupted run.
        #[test]
        fn random_crash_positions_recover_byte_identically(
            seed in 0u64..200,
            intensity in 0.0f64..15.0,
            frac in 0.0f64..1.0,
        ) {
            let ew = experiment(4, 3, seed);
            let spec = ExperimentSpec::new(2).with_stop_on_target(false).with_seed(seed);
            let plan = fault_plan(seed ^ 0xC4A5, intensity);
            let mut p0 = DefaultPolicy::new();
            let meta = hyperdrive_framework::run_meta(p0.name(), &ew, &spec, &plan);
            let outcome = run_sim_journaled(
                &mut p0, &ew, spec, &plan, Journal::in_memory(meta), None,
            );
            let baseline = outcome.result.unwrap();
            let k = 1 + (frac * (outcome.inputs.saturating_sub(1)) as f64) as u64;
            let journal = Journal::in_memory(meta);
            let mut victim = DefaultPolicy::new();
            let crashed = run_sim_journaled(
                &mut victim, &ew, spec, &plan, journal.clone(), Some(k),
            );
            prop_assert!(crashed.result.is_none());
            let mut fresh = DefaultPolicy::new();
            let result = resume_sim_journaled(
                &mut fresh, &ew, spec, &plan, journal.reopen().unwrap(),
            ).unwrap();
            prop_assert_eq!(signature(&baseline), signature(&result));
        }
    }
}
