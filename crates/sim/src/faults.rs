//! Fault-injecting discrete-event execution.
//!
//! [`run_sim_with_faults`] replays a
//! [`FaultPlan`](hyperdrive_framework::FaultPlan) against an experiment in
//! virtual time: machine crash/recovery events are scheduled alongside the
//! engine's own completions, agent stalls swallow the next completion
//! report from their machine (the engine learns of the loss only when the
//! scheduled detection timeout fires), and reply delays postpone a report
//! without losing it. Probabilistic faults (suspend failure, snapshot
//! corruption) are evaluated inside the engine from the plan's seeded RNG
//! stream.
//!
//! Running with [`FaultPlan::none`](hyperdrive_framework::FaultPlan::none)
//! is byte-identical to [`run_sim`](crate::run_sim) — the property tests
//! below pin that down.

use std::collections::{HashMap, VecDeque};

use hyperdrive_framework::{
    Command, EngineEvent, ExperimentEngine, ExperimentResult, ExperimentSpec, ExperimentWorkload,
    FaultKind, FaultPlan, SchedulingPolicy,
};
use hyperdrive_types::{MachineId, SimTime};

use crate::queue::EventQueue;

/// Everything that can happen in the fault-injecting simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SimEvent {
    /// A completion report reaching the scheduler.
    Engine(EngineEvent),
    /// A scheduled machine crash.
    Crash(MachineId),
    /// A scheduled machine recovery.
    Recover(MachineId),
    /// The heartbeat timeout for a swallowed report fires.
    StallDetected(MachineId),
}

/// Per-machine queues of pending stall/delay faults, consumed in time
/// order as replies would pass through them.
pub(crate) struct ReplyFaults {
    /// `(fault time, detection latency)` — the next reply due at or after
    /// the fault time is lost; the scheduler notices `detection` later.
    stalls: HashMap<MachineId, VecDeque<(SimTime, SimTime)>>,
    /// `(fault time, extra latency)` — the next reply due at or after the
    /// fault time arrives late.
    delays: HashMap<MachineId, VecDeque<(SimTime, SimTime)>>,
}

impl ReplyFaults {
    pub(crate) fn from_plan(plan: &FaultPlan) -> Self {
        let mut stalls: HashMap<MachineId, VecDeque<(SimTime, SimTime)>> = HashMap::new();
        let mut delays: HashMap<MachineId, VecDeque<(SimTime, SimTime)>> = HashMap::new();
        for event in &plan.events {
            match event.kind {
                FaultKind::AgentStall { detection } => {
                    stalls.entry(event.machine).or_default().push_back((event.at, detection));
                }
                FaultKind::ReplyDelay { delay } => {
                    delays.entry(event.machine).or_default().push_back((event.at, delay));
                }
                FaultKind::MachineCrash
                | FaultKind::MachineRecover
                | FaultKind::EngineCrash { .. } => {}
            }
        }
        ReplyFaults { stalls, delays }
    }

    /// Routes one completion report due at `due` from `machine`: either it
    /// is swallowed by a stall (returns the detection time), postponed by a
    /// delay (returns the late arrival time), or passes through untouched.
    fn route(&mut self, machine: MachineId, due: SimTime) -> ReplyFate {
        if let Some(queue) = self.stalls.get_mut(&machine) {
            if let Some(&(at, detection)) = queue.front() {
                if at <= due {
                    queue.pop_front();
                    return ReplyFate::Lost { detected_at: due + detection };
                }
            }
        }
        if let Some(queue) = self.delays.get_mut(&machine) {
            if let Some(&(at, delay)) = queue.front() {
                if at <= due {
                    queue.pop_front();
                    return ReplyFate::Delayed { arrives_at: due + delay };
                }
            }
        }
        ReplyFate::OnTime
    }
}

enum ReplyFate {
    OnTime,
    Delayed { arrives_at: SimTime },
    Lost { detected_at: SimTime },
}

/// Translates engine commands into future events, filtering each reply
/// through the pending stall/delay faults. Returns whether `Stop` was seen.
pub(crate) fn schedule_faulty(
    cmds: &[Command],
    now: SimTime,
    queue: &mut EventQueue<SimEvent>,
    reply_faults: &mut ReplyFaults,
) -> bool {
    let mut stop = false;
    for cmd in cmds {
        let (machine, due, event) = match *cmd {
            Command::RunEpoch { job, machine, duration, token, .. } => {
                (machine, now + duration, EngineEvent::EpochDone { job, token })
            }
            Command::Suspend { job, machine, latency, token } => {
                (machine, now + latency, EngineEvent::SuspendDone { job, token })
            }
            Command::Stop => {
                stop = true;
                continue;
            }
        };
        match reply_faults.route(machine, due) {
            ReplyFate::OnTime => queue.schedule(due, SimEvent::Engine(event)),
            ReplyFate::Delayed { arrives_at } => {
                queue.schedule(arrives_at, SimEvent::Engine(event));
            }
            ReplyFate::Lost { detected_at } => {
                // The report never arrives; only the watchdog does.
                queue.schedule(detected_at, SimEvent::StallDetected(machine));
            }
        }
    }
    stop
}

/// Runs one experiment to completion on the virtual clock while injecting
/// the faults scheduled in `plan`.
///
/// With an empty plan this is byte-identical to [`run_sim`](crate::run_sim):
/// same event log, same result, zero extra RNG draws. Under faults, every
/// interrupted job is rolled back to its last snapshot and re-run (capped
/// by the plan's retry policy), crashed machines rejoin the cluster at
/// their scheduled recovery times, and the run ends when the engine stops,
/// every job reaches a terminal state, or the event queue drains.
pub fn run_sim_with_faults(
    policy: &mut dyn SchedulingPolicy,
    workload: &ExperimentWorkload,
    spec: ExperimentSpec,
    plan: &FaultPlan,
) -> ExperimentResult {
    let mut engine = ExperimentEngine::with_fault_injection(policy, workload, spec, plan);
    // True worst-case heap occupancy under faults: besides each job's one
    // live in-flight event, every interruption can orphan a stale-token
    // event that lingers in the queue until its (delayed) due time, and a
    // job is interrupted at most `max_retries + 1` times before it fails —
    // so up to `max_retries + 2` queued events per job — plus one slot per
    // timed fault in the plan (crashes/recoveries are enqueued up front;
    // stall detections replace the reply they swallow, so the plan length
    // over-covers them). Sized here so the queue never reallocates
    // mid-run.
    let per_job = plan.retry.max_retries as usize + 2;
    let capacity = workload.len() * per_job + plan.events.len() + 1;
    let mut queue: EventQueue<SimEvent> = EventQueue::with_capacity(capacity);
    let mut reply_faults = ReplyFaults::from_plan(plan);
    let mut now = SimTime::ZERO;

    // Timed machine faults go straight into the future-event queue.
    for event in &plan.events {
        match event.kind {
            FaultKind::MachineCrash => queue.schedule(event.at, SimEvent::Crash(event.machine)),
            FaultKind::MachineRecover => {
                queue.schedule(event.at, SimEvent::Recover(event.machine));
            }
            FaultKind::AgentStall { .. }
            | FaultKind::ReplyDelay { .. }
            | FaultKind::EngineCrash { .. } => {}
        }
    }

    let mut cmds = Vec::new();
    engine.start_into(&mut cmds);
    let mut stopping = schedule_faulty(&cmds, now, &mut queue, &mut reply_faults);
    while !stopping {
        let Some((t, sim_event)) = queue.pop() else {
            break; // all work and all faults drained
        };
        now = t;
        match sim_event {
            SimEvent::Engine(event) => engine.handle_into(event, t, &mut cmds),
            SimEvent::Crash(machine) => engine.inject_machine_crash_into(machine, t, &mut cmds),
            SimEvent::Recover(machine) => {
                engine.inject_machine_recovery_into(machine, t, &mut cmds);
            }
            SimEvent::StallDetected(machine) => {
                engine.inject_agent_stall_into(machine, t, &mut cmds);
            }
        }
        stopping = schedule_faulty(&cmds, now, &mut queue, &mut reply_faults) || engine.stopped();
        if !stopping && engine.active_job_count() == 0 {
            // Every job reached a terminal state; anything left in the
            // queue is a fault event that can no longer affect the run.
            break;
        }
    }
    engine.into_result(now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_sim;
    use hyperdrive_framework::{DefaultPolicy, FaultConfig, FaultStats, JobEnd, RetryPolicy};
    use hyperdrive_workload::CifarWorkload;
    use proptest::prelude::*;

    fn experiment(n: usize, epochs: u32, seed: u64) -> ExperimentWorkload {
        let w = CifarWorkload::new().with_max_epochs(epochs);
        ExperimentWorkload::from_workload(&w, n, seed)
    }

    fn event_csv(result: &ExperimentResult) -> Vec<u8> {
        let mut buf = Vec::new();
        result.events.write_csv(&mut buf).unwrap();
        buf
    }

    /// `total_epochs` counts every executed epoch; completed epochs either
    /// survive in a job's final count or were rolled back and re-run.
    fn assert_epoch_accounting(result: &ExperimentResult) {
        let surviving: u64 = result.outcomes.iter().map(|o| u64::from(o.epochs)).sum();
        assert_eq!(
            result.total_epochs,
            surviving + result.faults.lost_epochs,
            "epoch accounting: {} executed vs {} surviving + {} lost",
            result.total_epochs,
            surviving,
            result.faults.lost_epochs
        );
    }

    #[test]
    fn crashes_recover_and_all_jobs_finish() {
        let ew = experiment(8, 6, 5);
        let spec = ExperimentSpec::new(3).with_stop_on_target(false).with_seed(5);
        let plan = FaultPlan::generate(
            3,
            &FaultConfig::with_intensity(17, SimTime::from_hours(12.0), 20.0),
        );
        assert!(!plan.is_empty(), "intensity 20 must inject faults");
        let mut policy = DefaultPolicy::new();
        let result = run_sim_with_faults(&mut policy, &ew, spec, &plan);
        assert!(result.faults.interruptions > 0, "faults actually struck");
        // The run may finish before the last scheduled recoveries fire;
        // the books must still balance.
        assert!(result.faults.machine_recoveries <= result.faults.machine_crashes);
        assert_eq!(
            result.faults.dead_machines_at_end,
            result.faults.machine_crashes - result.faults.machine_recoveries,
            "unrecovered crashes are exactly the machines dead at the end"
        );
        assert!(
            result
                .outcomes
                .iter()
                .all(|o| matches!(o.end, JobEnd::Completed | JobEnd::Terminated | JobEnd::Failed)),
            "no job left dangling: {:?}",
            result.outcomes.iter().map(|o| o.end).collect::<Vec<_>>()
        );
        assert_epoch_accounting(&result);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let ew = experiment(6, 5, 9);
        let spec = ExperimentSpec::new(2).with_stop_on_target(false).with_seed(9);
        let plan = FaultPlan::generate(
            2,
            &FaultConfig::with_intensity(3, SimTime::from_hours(12.0), 15.0),
        );
        let mut p1 = DefaultPolicy::new();
        let r1 = run_sim_with_faults(&mut p1, &ew, spec, &plan);
        let mut p2 = DefaultPolicy::new();
        let r2 = run_sim_with_faults(&mut p2, &ew, spec, &plan);
        assert_eq!(r1.end_time, r2.end_time);
        assert_eq!(r1.total_epochs, r2.total_epochs);
        assert_eq!(r1.faults, r2.faults);
        assert_eq!(event_csv(&r1), event_csv(&r2), "identical event logs");
    }

    #[test]
    fn zero_retries_fail_jobs_instead_of_hanging() {
        let ew = experiment(4, 6, 2);
        let spec = ExperimentSpec::new(2).with_stop_on_target(false).with_seed(2);
        let mut config = FaultConfig::with_intensity(8, SimTime::from_hours(12.0), 30.0);
        config.retry = RetryPolicy { max_retries: 0, ..RetryPolicy::default() };
        let plan = FaultPlan::generate(2, &config);
        let mut policy = DefaultPolicy::new();
        let result = run_sim_with_faults(&mut policy, &ew, spec, &plan);
        assert!(result.faults.failed_jobs > 0, "first interruption fails a job");
        assert_eq!(result.faults.failed_jobs, result.failed_jobs() as u64);
        assert_epoch_accounting(&result);
    }

    #[test]
    fn delayed_replies_lose_no_work() {
        let ew = experiment(4, 4, 3);
        let spec = ExperimentSpec::new(2).with_stop_on_target(false).with_seed(3);
        let mut config = FaultConfig::with_intensity(5, SimTime::from_hours(12.0), 10.0);
        // Delays only: no crashes, stalls, or probabilistic faults.
        config.crash_rate_per_hour = 0.0;
        config.stall_rate_per_hour = 0.0;
        config.suspend_fail_prob = 0.0;
        config.snapshot_corrupt_prob = 0.0;
        let plan = FaultPlan::generate(2, &config);
        assert!(!plan.is_empty());
        let mut policy = DefaultPolicy::new();
        let faulty = run_sim_with_faults(&mut policy, &ew, spec, &plan);
        let mut baseline_policy = DefaultPolicy::new();
        let baseline = run_sim(&mut baseline_policy, &ew, spec);
        assert_eq!(faulty.faults.lost_epochs, 0, "delays lose nothing");
        assert_eq!(faulty.total_epochs, baseline.total_epochs);
        assert!(faulty.end_time >= baseline.end_time, "late reports can only lengthen the run");
        assert_epoch_accounting(&faulty);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        // The zero-cost guarantee: an empty fault plan leaves the run
        // byte-identical to the plain simulator — same event log bytes,
        // same clock, same epoch counts, zero fault stats.
        #[test]
        fn empty_plan_is_byte_identical_to_plain_sim(
            seed in 0u64..1000,
            n_jobs in 2usize..8,
            machines in 1usize..4,
            epochs in 2u32..6,
        ) {
            let ew = experiment(n_jobs, epochs, seed);
            let spec = ExperimentSpec::new(machines)
                .with_stop_on_target(false)
                .with_seed(seed);
            let mut p_plain = DefaultPolicy::new();
            let plain = run_sim(&mut p_plain, &ew, spec);
            let mut p_faulty = DefaultPolicy::new();
            let faulty = run_sim_with_faults(&mut p_faulty, &ew, spec, &FaultPlan::none());
            prop_assert_eq!(plain.end_time, faulty.end_time);
            prop_assert_eq!(plain.total_epochs, faulty.total_epochs);
            prop_assert_eq!(plain.time_to_target, faulty.time_to_target);
            prop_assert_eq!(event_csv(&plain), event_csv(&faulty));
            prop_assert_eq!(faulty.faults, FaultStats::default());
        }

        // Determinism under arbitrary generated plans: same seed, same
        // plan, same run — twice.
        #[test]
        fn seeded_fault_runs_replay_exactly(
            seed in 0u64..500,
            intensity in 0.0f64..25.0,
        ) {
            let ew = experiment(4, 4, seed);
            let spec = ExperimentSpec::new(2).with_stop_on_target(false).with_seed(seed);
            let plan = FaultPlan::generate(
                2,
                &FaultConfig::with_intensity(seed, SimTime::from_hours(8.0), intensity),
            );
            let mut p1 = DefaultPolicy::new();
            let r1 = run_sim_with_faults(&mut p1, &ew, spec, &plan);
            let mut p2 = DefaultPolicy::new();
            let r2 = run_sim_with_faults(&mut p2, &ew, spec, &plan);
            prop_assert_eq!(r1.end_time, r2.end_time);
            prop_assert_eq!(r1.faults, r2.faults);
            prop_assert_eq!(event_csv(&r1), event_csv(&r2));
        }
    }
}
