//! Hyperparameter Generators (HG).
//!
//! §4.2: the generator "is responsible for generating specific parameter
//! values within ranges specified by the experiment runner" behind the API
//! `createJob() → (jobID, hyperparameters)` and
//! `reportFinalPerformance(jobID, performance)`. Random and grid search
//! ignore the feedback call; adaptive (Bayesian-style) generators use it —
//! the paper plugs frameworks like Spearmint/GPyOpt in through "a shim that
//! exposes the HG API". [`AdaptiveGenerator`] is that shim's native
//! counterpart: a TPE-flavoured density-ratio sampler.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use hyperdrive_types::{ConfigId, Configuration, Error, HyperParamSpace, ParamRange, Result};

/// Generates hyperparameter configurations on demand and accepts final
/// performance feedback.
pub trait HyperparameterGenerator: Send {
    /// Generator name for reports.
    fn name(&self) -> &str;

    /// Produces the next configuration (`createJob`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::GeneratorExhausted`] when no further configuration
    /// can be produced (e.g. a grid ran out).
    fn create_job(&mut self) -> Result<(ConfigId, Configuration)>;

    /// Reports the final performance of a finished configuration
    /// (`reportFinalPerformance`). Random/grid generators ignore this.
    fn report_final_performance(&mut self, config: ConfigId, performance: f64) {
        let _ = (config, performance);
    }
}

/// Uniform random search over a space (the paper's default HG; §6.1 uses
/// it with a fixed seed so every policy sees the same 100 configurations).
#[derive(Debug)]
pub struct RandomGenerator {
    space: HyperParamSpace,
    rng: StdRng,
    next_id: u64,
}

impl RandomGenerator {
    /// Creates a seeded random generator.
    pub fn new(space: HyperParamSpace, seed: u64) -> Self {
        RandomGenerator { space, rng: StdRng::seed_from_u64(seed), next_id: 0 }
    }
}

impl HyperparameterGenerator for RandomGenerator {
    fn name(&self) -> &str {
        "random"
    }

    fn create_job(&mut self) -> Result<(ConfigId, Configuration)> {
        let id = ConfigId::new(self.next_id);
        self.next_id += 1;
        Ok((id, self.space.sample(&mut self.rng)))
    }
}

/// Exhaustive grid search with a fixed number of points per dimension.
#[derive(Debug)]
pub struct GridGenerator {
    configs: Vec<Configuration>,
    next: usize,
}

impl GridGenerator {
    /// Builds the full grid up front (`per_dim^dims` points — keep small).
    pub fn new(space: &HyperParamSpace, per_dim: usize) -> Self {
        GridGenerator { configs: space.grid(per_dim), next: 0 }
    }

    /// Remaining configurations.
    pub fn remaining(&self) -> usize {
        self.configs.len() - self.next
    }
}

impl HyperparameterGenerator for GridGenerator {
    fn name(&self) -> &str {
        "grid"
    }

    fn create_job(&mut self) -> Result<(ConfigId, Configuration)> {
        if self.next >= self.configs.len() {
            return Err(Error::GeneratorExhausted);
        }
        let id = ConfigId::new(self.next as u64);
        let config = self.configs[self.next].clone();
        self.next += 1;
        Ok((id, config))
    }
}

/// An adaptive generator in the spirit of TPE (Bergstra et al.): numeric
/// parameters of configurations whose reported performance lands in the top
/// quantile form a "good" kernel-density model, the rest a "bad" one; new
/// candidates are sampled at random and scored by the good/bad density
/// ratio. Until enough feedback arrives it behaves like random search.
#[derive(Debug)]
pub struct AdaptiveGenerator {
    space: HyperParamSpace,
    rng: StdRng,
    next_id: u64,
    issued: HashMap<ConfigId, Configuration>,
    observed: Vec<(Configuration, f64)>,
    /// Fraction of observations counted as "good".
    good_quantile: f64,
    /// Observations required before the model activates.
    warmup: usize,
    /// Candidates scored per draw.
    candidates: usize,
}

impl AdaptiveGenerator {
    /// Creates an adaptive generator with standard settings (top 25%
    /// good, 8-observation warmup, 24 candidates per draw).
    pub fn new(space: HyperParamSpace, seed: u64) -> Self {
        AdaptiveGenerator {
            space,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
            issued: HashMap::new(),
            observed: Vec::new(),
            good_quantile: 0.25,
            warmup: 8,
            candidates: 24,
        }
    }

    /// Number of feedback observations received so far.
    pub fn observations(&self) -> usize {
        self.observed.len()
    }

    /// Log-density of `config` under a product of per-dimension Gaussian
    /// kernels centred at each member of `group` (numeric dims only; in
    /// log-space for log-scaled parameters).
    fn log_density(&self, config: &Configuration, group: &[&Configuration]) -> f64 {
        if group.is_empty() {
            return f64::NEG_INFINITY;
        }
        let mut total = 0.0;
        for (name, range) in self.space.params() {
            let transform = |v: f64| -> f64 {
                match range {
                    ParamRange::Continuous { log: true, .. } => v.ln(),
                    _ => v,
                }
            };
            let (width, x) = match range {
                ParamRange::Continuous { low, high, log } => {
                    let w = if *log { (high.ln() - low.ln()).abs() } else { high - low };
                    match config.get_f64(name) {
                        Some(v) => (w, transform(v)),
                        None => continue,
                    }
                }
                ParamRange::Integer { low, high } => {
                    let w = (*high - *low) as f64;
                    match config.get_f64(name) {
                        Some(v) => (w.max(1.0), v),
                        None => continue,
                    }
                }
                ParamRange::Categorical(_) => continue,
            };
            let bandwidth = (width / 5.0).max(1e-9);
            // Mixture of Gaussians over the group members.
            let mut acc = 0.0;
            for member in group {
                if let Some(mv) = member.get_f64(name) {
                    let z = (x - transform(mv)) / bandwidth;
                    acc += (-0.5 * z * z).exp();
                }
            }
            total += (acc / group.len() as f64 + 1e-12).ln();
        }
        total
    }
}

impl HyperparameterGenerator for AdaptiveGenerator {
    fn name(&self) -> &str {
        "adaptive"
    }

    fn create_job(&mut self) -> Result<(ConfigId, Configuration)> {
        let id = ConfigId::new(self.next_id);
        self.next_id += 1;

        let config = if self.observed.len() < self.warmup {
            self.space.sample(&mut self.rng)
        } else {
            // Split observations into good/bad by the performance quantile.
            let mut sorted: Vec<&(Configuration, f64)> = self.observed.iter().collect();
            sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("performance is not NaN"));
            let n_good = ((sorted.len() as f64 * self.good_quantile).ceil() as usize).max(1);
            let good: Vec<&Configuration> = sorted[..n_good].iter().map(|(c, _)| c).collect();
            let bad: Vec<&Configuration> = sorted[n_good..].iter().map(|(c, _)| c).collect();

            let mut best: Option<(Configuration, f64)> = None;
            for _ in 0..self.candidates {
                let cand = self.space.sample(&mut self.rng);
                let score = self.log_density(&cand, &good)
                    - if bad.is_empty() { 0.0 } else { self.log_density(&cand, &bad) };
                if best.as_ref().is_none_or(|(_, s)| score > *s) {
                    best = Some((cand, score));
                }
            }
            best.expect("candidates > 0").0
        };
        self.issued.insert(id, config.clone());
        Ok((id, config))
    }

    fn report_final_performance(&mut self, config: ConfigId, performance: f64) {
        if let Some(c) = self.issued.remove(&config) {
            if performance.is_finite() {
                self.observed.push((c, performance));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperdrive_types::HyperParamSpace;

    fn space() -> HyperParamSpace {
        HyperParamSpace::builder()
            .continuous_log("lr", 1e-5, 1.0)
            .continuous("momentum", 0.0, 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn random_generator_is_seed_deterministic() {
        let mut a = RandomGenerator::new(space(), 7);
        let mut b = RandomGenerator::new(space(), 7);
        for _ in 0..5 {
            assert_eq!(a.create_job().unwrap(), b.create_job().unwrap());
        }
        let mut c = RandomGenerator::new(space(), 8);
        assert_ne!(a.create_job().unwrap().1, c.create_job().unwrap().1);
    }

    #[test]
    fn config_ids_are_sequential() {
        let mut g = RandomGenerator::new(space(), 1);
        assert_eq!(g.create_job().unwrap().0, ConfigId::new(0));
        assert_eq!(g.create_job().unwrap().0, ConfigId::new(1));
    }

    #[test]
    fn grid_exhausts() {
        let mut g = GridGenerator::new(&space(), 2);
        assert_eq!(g.remaining(), 4);
        for _ in 0..4 {
            g.create_job().unwrap();
        }
        assert!(matches!(g.create_job(), Err(Error::GeneratorExhausted)));
    }

    #[test]
    fn adaptive_warms_up_as_random_then_exploits() {
        // Ground truth: performance peaks at lr = 1e-3, momentum = 0.9.
        let truth = |c: &Configuration| -> f64 {
            let lr = c.get_f64("lr").unwrap().log10();
            let m = c.get_f64("momentum").unwrap();
            (-0.5 * ((lr + 3.0) / 0.8).powi(2)).exp() * (-0.5 * ((m - 0.9) / 0.3).powi(2)).exp()
        };
        let mut g = AdaptiveGenerator::new(space(), 3);
        // Feed 40 observations.
        for _ in 0..40 {
            let (id, c) = g.create_job().unwrap();
            let perf = truth(&c);
            g.report_final_performance(id, perf);
        }
        assert_eq!(g.observations(), 40);
        // Post-warmup candidates should concentrate near the optimum more
        // than uniform sampling would.
        let mut adaptive_scores = Vec::new();
        for _ in 0..20 {
            let (_, c) = g.create_job().unwrap();
            adaptive_scores.push(truth(&c));
        }
        let mut uniform = RandomGenerator::new(space(), 999);
        let mut uniform_scores = Vec::new();
        for _ in 0..20 {
            uniform_scores.push(truth(&uniform.create_job().unwrap().1));
        }
        let a = hyperdrive_types::stats::mean(&adaptive_scores).unwrap();
        let u = hyperdrive_types::stats::mean(&uniform_scores).unwrap();
        assert!(a > u, "adaptive mean {a} should beat uniform mean {u}");
    }

    #[test]
    fn adaptive_ignores_unknown_feedback() {
        let mut g = AdaptiveGenerator::new(space(), 1);
        g.report_final_performance(ConfigId::new(42), 0.9);
        assert_eq!(g.observations(), 0);
        g.report_final_performance(ConfigId::new(0), f64::NAN);
        assert_eq!(g.observations(), 0);
    }

    #[test]
    fn generators_are_object_safe() {
        let mut gens: Vec<Box<dyn HyperparameterGenerator>> = vec![
            Box::new(RandomGenerator::new(space(), 1)),
            Box::new(GridGenerator::new(&space(), 2)),
            Box::new(AdaptiveGenerator::new(space(), 1)),
        ];
        for g in &mut gens {
            assert!(g.create_job().is_ok());
        }
    }
}
