//! The HyperDrive framework (§4 of the paper).
//!
//! HyperDrive "largely decouples the scheduling policy for candidate
//! configurations from the type of model and/or framework". This crate
//! provides that separation:
//!
//! * [`resource`] — the Resource Manager (`reserve_idle_machine` /
//!   `release_machine`).
//! * [`job_manager`] — the Job Manager: start/resume/suspend/terminate,
//!   priority labels, FIFO+priority idle queue.
//! * [`appstat`] — the AppStat DB: per-job performance history, model
//!   snapshots, suspend telemetry.
//! * [`policy`] — the Scheduling Algorithm Policy (SAP) interface: the
//!   three up-calls `allocate_jobs` / `application_stat` /
//!   `on_iteration_finish`, plus the Default SAP.
//! * [`generator`] — the Hyperparameter Generator API with random, grid,
//!   and adaptive implementations.
//! * [`experiment`] — experiment specification (workload + cluster +
//!   `Tmax`) and results.
//! * [`engine`] — the executor-independent experiment engine that turns
//!   policy decisions into abstract commands.
//! * [`live`] — the live executor: node-agent threads exchanging messages
//!   with the scheduler over channels, in scaled wall-clock time.
//!
//! The discrete-event executor lives in the `hyperdrive-sim` crate; both
//! executors drive the same [`engine::ExperimentEngine`], so any SAP runs
//! unchanged on either (the paper's live-vs-simulator validation, Fig 12a).
//!
//! # Example
//!
//! ```
//! use hyperdrive_framework::experiment::{ExperimentSpec, ExperimentWorkload};
//! use hyperdrive_framework::live::run_live;
//! use hyperdrive_framework::policy::DefaultPolicy;
//! use hyperdrive_workload::CifarWorkload;
//!
//! let workload = CifarWorkload::new().with_max_epochs(3);
//! let experiment = ExperimentWorkload::from_workload(&workload, 4, 42);
//! let spec = ExperimentSpec::new(2).with_stop_on_target(false);
//! let mut policy = DefaultPolicy::new();
//! let result = run_live(&mut policy, &experiment, spec, 60_000.0);
//! assert_eq!(result.total_epochs, 12);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod appstat;
mod dense;
pub mod engine;
pub mod events;
pub mod experiment;
pub mod fault;
pub mod generator;
pub mod job_manager;
pub mod journal;
pub mod live;
pub mod policy;
pub mod resource;
pub mod snapshot;

pub use appstat::{AppStatDb, SuspendEvent};
pub use engine::{Command, EngineEvent, ExperimentEngine, RecoveredRun};
pub use events::{EventLog, GanttSegment, SchedulerEvent};
pub use experiment::{
    ExperimentJob, ExperimentResult, ExperimentSpec, ExperimentWorkload, JobEnd, JobOutcome,
    TargetMilestone,
};
pub use fault::{FaultConfig, FaultEvent, FaultKind, FaultPlan, FaultStats, RetryPolicy};
pub use generator::{AdaptiveGenerator, GridGenerator, HyperparameterGenerator, RandomGenerator};
pub use job_manager::{JobManager, JobState};
pub use journal::{run_meta, Journal, RecoveredJournal, ReplayInput};
pub use live::{
    install_sigterm_handler, run_live, run_live_journaled, run_live_with_faults, LiveFaultPlan,
};
pub use policy::{
    testing, DefaultPolicy, FitCacheSnapshot, JobDecision, JobEvent, PrefetchHint,
    SchedulerContext, SchedulingPolicy,
};
pub use resource::ResourceManager;
pub use snapshot::JobSnapshot;
