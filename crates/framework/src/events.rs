//! The scheduler event log: a complete, ordered record of job lifecycle
//! transitions, for post-hoc analysis (Gantt charts, machine utilization,
//! debugging policy behaviour).
//!
//! The engine records every start/resume, suspend, termination, completion,
//! and target milestone. Per-epoch events are *not* recorded here (they
//! live in the AppStat DB as learning curves); the log stays proportional
//! to scheduling decisions, not training volume.

use hyperdrive_types::{JobId, MachineId, SimTime};

/// One scheduler-level event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerEvent {
    /// A job began (or resumed) executing on a machine.
    Started {
        /// The job.
        job: JobId,
        /// Hosting machine.
        machine: MachineId,
        /// When execution began.
        time: SimTime,
        /// True if this start resumed a previously suspended job.
        resumed: bool,
    },
    /// A job's suspend completed; its machine is free.
    Suspended {
        /// The job.
        job: JobId,
        /// The machine it vacated.
        machine: MachineId,
        /// When the snapshot finished.
        time: SimTime,
    },
    /// A job was terminated by policy decision.
    Terminated {
        /// The job.
        job: JobId,
        /// The machine it vacated.
        machine: MachineId,
        /// When.
        time: SimTime,
    },
    /// A job ran to its epoch cap.
    Completed {
        /// The job.
        job: JobId,
        /// The machine it vacated.
        machine: MachineId,
        /// When.
        time: SimTime,
    },
    /// A target (possibly one of several, in dynamic-target mode) was
    /// reached.
    TargetReached {
        /// The achieving job.
        job: JobId,
        /// The normalized target value.
        target: f64,
        /// When.
        time: SimTime,
    },
    /// A machine crashed (fault injection); work on it was lost.
    MachineCrashed {
        /// The crashed machine.
        machine: MachineId,
        /// When.
        time: SimTime,
    },
    /// A crashed machine returned to service.
    MachineRecovered {
        /// The recovered machine.
        machine: MachineId,
        /// When.
        time: SimTime,
    },
    /// A job was knocked off its machine by a fault (crash, agent stall,
    /// or failed suspend) and rolled back to its last snapshot.
    Interrupted {
        /// The job.
        job: JobId,
        /// The machine it lost.
        machine: MachineId,
        /// When the interruption was detected.
        time: SimTime,
        /// Completed epochs rolled back (to be re-run).
        lost_epochs: u32,
    },
    /// A resume found an undecodable snapshot; the job restarts from
    /// scratch.
    SnapshotCorrupted {
        /// The job.
        job: JobId,
        /// When the corruption was discovered.
        time: SimTime,
    },
    /// A job exhausted its retry budget and was marked failed.
    Failed {
        /// The job.
        job: JobId,
        /// When.
        time: SimTime,
    },
}

impl SchedulerEvent {
    /// The event's timestamp.
    pub fn time(&self) -> SimTime {
        match self {
            SchedulerEvent::Started { time, .. }
            | SchedulerEvent::Suspended { time, .. }
            | SchedulerEvent::Terminated { time, .. }
            | SchedulerEvent::Completed { time, .. }
            | SchedulerEvent::TargetReached { time, .. }
            | SchedulerEvent::MachineCrashed { time, .. }
            | SchedulerEvent::MachineRecovered { time, .. }
            | SchedulerEvent::Interrupted { time, .. }
            | SchedulerEvent::SnapshotCorrupted { time, .. }
            | SchedulerEvent::Failed { time, .. } => *time,
        }
    }
}

/// A contiguous span of one job occupying one machine — one bar of a Gantt
/// chart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GanttSegment {
    /// The job.
    pub job: JobId,
    /// The machine.
    pub machine: MachineId,
    /// Span start.
    pub start: SimTime,
    /// Span end (suspend/terminate/complete time, or experiment end for
    /// spans still open at shutdown).
    pub end: SimTime,
    /// True if the span began with a resume.
    pub resumed: bool,
}

/// Ordered record of scheduler events with derived views.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<SchedulerEvent>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty log with room for `capacity` events, so steady-state
    /// recording never reallocates (the engine sizes this from the
    /// workload).
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog { events: Vec::with_capacity(capacity) }
    }

    /// Appends an event. Events must arrive in non-decreasing time order
    /// (the engine guarantees this).
    pub fn record(&mut self, event: SchedulerEvent) {
        self.events.push(event);
    }

    /// All events in arrival order.
    pub fn events(&self) -> &[SchedulerEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Derives Gantt segments: each `Started` opens a span on its machine,
    /// closed by the next `Suspended`/`Terminated`/`Completed` for the
    /// same job, or by `experiment_end` if still open.
    pub fn gantt(&self, experiment_end: SimTime) -> Vec<GanttSegment> {
        let mut open: std::collections::HashMap<JobId, (MachineId, SimTime, bool)> =
            std::collections::HashMap::new();
        let mut segments = Vec::new();
        for event in &self.events {
            match *event {
                SchedulerEvent::Started { job, machine, time, resumed } => {
                    open.insert(job, (machine, time, resumed));
                }
                SchedulerEvent::Suspended { job, time, .. }
                | SchedulerEvent::Terminated { job, time, .. }
                | SchedulerEvent::Completed { job, time, .. }
                | SchedulerEvent::Interrupted { job, time, .. } => {
                    if let Some((machine, start, resumed)) = open.remove(&job) {
                        segments.push(GanttSegment { job, machine, start, end: time, resumed });
                    }
                }
                SchedulerEvent::Failed { job, time } => {
                    if let Some((machine, start, resumed)) = open.remove(&job) {
                        segments.push(GanttSegment { job, machine, start, end: time, resumed });
                    }
                }
                SchedulerEvent::TargetReached { .. }
                | SchedulerEvent::MachineCrashed { .. }
                | SchedulerEvent::MachineRecovered { .. }
                | SchedulerEvent::SnapshotCorrupted { .. } => {}
            }
        }
        for (job, (machine, start, resumed)) in open {
            segments.push(GanttSegment {
                job,
                machine,
                start,
                end: experiment_end.max(start),
                resumed,
            });
        }
        segments.sort_by(|a, b| a.start.cmp(&b.start).then(a.job.cmp(&b.job)));
        segments
    }

    /// Fraction of `[0, experiment_end]` each machine spent occupied,
    /// indexed by machine id. Machines that never appear report 0.
    pub fn machine_utilization(&self, machines: usize, experiment_end: SimTime) -> Vec<f64> {
        let mut busy = vec![0.0f64; machines];
        for seg in self.gantt(experiment_end) {
            let idx = seg.machine.raw() as usize;
            if idx < machines {
                busy[idx] += (seg.end - seg.start).as_secs();
            }
        }
        let total = experiment_end.as_secs();
        if total <= 0.0 {
            return vec![0.0; machines];
        }
        busy.into_iter().map(|b| (b / total).clamp(0.0, 1.0)).collect()
    }

    /// Writes the log as CSV rows (`event,job,machine,time_s,detail`).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "event,job,machine,time_s,detail")?;
        for e in &self.events {
            match *e {
                SchedulerEvent::Started { job, machine, time, resumed } => writeln!(
                    w,
                    "started,{},{},{:.3},{}",
                    job.raw(),
                    machine.raw(),
                    time.as_secs(),
                    if resumed { "resumed" } else { "fresh" }
                )?,
                SchedulerEvent::Suspended { job, machine, time } => {
                    writeln!(w, "suspended,{},{},{:.3},", job.raw(), machine.raw(), time.as_secs())?
                }
                SchedulerEvent::Terminated { job, machine, time } => writeln!(
                    w,
                    "terminated,{},{},{:.3},",
                    job.raw(),
                    machine.raw(),
                    time.as_secs()
                )?,
                SchedulerEvent::Completed { job, machine, time } => {
                    writeln!(w, "completed,{},{},{:.3},", job.raw(), machine.raw(), time.as_secs())?
                }
                SchedulerEvent::TargetReached { job, target, time } => {
                    writeln!(w, "target_reached,{},,{:.3},{target:.4}", job.raw(), time.as_secs())?
                }
                SchedulerEvent::MachineCrashed { machine, time } => {
                    writeln!(w, "machine_crashed,,{},{:.3},", machine.raw(), time.as_secs())?
                }
                SchedulerEvent::MachineRecovered { machine, time } => {
                    writeln!(w, "machine_recovered,,{},{:.3},", machine.raw(), time.as_secs())?
                }
                SchedulerEvent::Interrupted { job, machine, time, lost_epochs } => writeln!(
                    w,
                    "interrupted,{},{},{:.3},lost={lost_epochs}",
                    job.raw(),
                    machine.raw(),
                    time.as_secs()
                )?,
                SchedulerEvent::SnapshotCorrupted { job, time } => {
                    writeln!(w, "snapshot_corrupted,{},,{:.3},", job.raw(), time.as_secs())?
                }
                SchedulerEvent::Failed { job, time } => {
                    writeln!(w, "failed,{},,{:.3},", job.raw(), time.as_secs())?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn sample_log() -> EventLog {
        let mut log = EventLog::new();
        let (j0, j1) = (JobId::new(0), JobId::new(1));
        let m0 = MachineId::new(0);
        log.record(SchedulerEvent::Started { job: j0, machine: m0, time: t(0.0), resumed: false });
        log.record(SchedulerEvent::Suspended { job: j0, machine: m0, time: t(100.0) });
        log.record(SchedulerEvent::Started {
            job: j1,
            machine: m0,
            time: t(100.0),
            resumed: false,
        });
        log.record(SchedulerEvent::Terminated { job: j1, machine: m0, time: t(150.0) });
        log.record(SchedulerEvent::Started { job: j0, machine: m0, time: t(150.0), resumed: true });
        log.record(SchedulerEvent::TargetReached { job: j0, target: 0.77, time: t(190.0) });
        log
    }

    #[test]
    fn gantt_closes_spans_and_handles_open_tail() {
        let log = sample_log();
        let segments = log.gantt(t(200.0));
        assert_eq!(segments.len(), 3);
        assert_eq!(segments[0].job, JobId::new(0));
        assert_eq!(segments[0].start, t(0.0));
        assert_eq!(segments[0].end, t(100.0));
        assert!(!segments[0].resumed);
        assert_eq!(segments[1].job, JobId::new(1));
        assert_eq!(segments[1].end, t(150.0));
        // Open span closed at experiment end.
        assert_eq!(segments[2].start, t(150.0));
        assert_eq!(segments[2].end, t(200.0));
        assert!(segments[2].resumed);
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let log = sample_log();
        let util = log.machine_utilization(2, t(200.0));
        // Machine 0 busy 0-100, 100-150, 150-200 = 100%.
        assert!((util[0] - 1.0).abs() < 1e-9, "util {util:?}");
        assert_eq!(util[1], 0.0);
    }

    #[test]
    fn utilization_handles_zero_duration() {
        let log = EventLog::new();
        assert_eq!(log.machine_utilization(3, SimTime::ZERO), vec![0.0; 3]);
    }

    #[test]
    fn csv_rows_cover_all_event_kinds() {
        let log = sample_log();
        let mut buf = Vec::new();
        log.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for needle in ["started,0,0,0.000,fresh", "suspended,0", "terminated,1", "target_reached,0"]
        {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        assert_eq!(text.lines().count(), 1 + log.len());
    }

    #[test]
    fn fault_events_close_gantt_spans_and_serialize() {
        let mut log = EventLog::new();
        let j = JobId::new(0);
        let m = MachineId::new(1);
        log.record(SchedulerEvent::Started { job: j, machine: m, time: t(0.0), resumed: false });
        log.record(SchedulerEvent::MachineCrashed { machine: m, time: t(50.0) });
        log.record(SchedulerEvent::Interrupted {
            job: j,
            machine: m,
            time: t(50.0),
            lost_epochs: 2,
        });
        log.record(SchedulerEvent::MachineRecovered { machine: m, time: t(80.0) });
        log.record(SchedulerEvent::Started { job: j, machine: m, time: t(80.0), resumed: true });
        log.record(SchedulerEvent::SnapshotCorrupted { job: j, time: t(80.0) });
        log.record(SchedulerEvent::Failed { job: j, time: t(120.0) });
        let segments = log.gantt(t(200.0));
        assert_eq!(segments.len(), 2, "interrupt and fail both close spans");
        assert_eq!(segments[0].end, t(50.0));
        assert_eq!(segments[1].end, t(120.0));
        let mut buf = Vec::new();
        log.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for needle in [
            "machine_crashed,,1,50.000,",
            "interrupted,0,1,50.000,lost=2",
            "machine_recovered,,1,80.000,",
            "snapshot_corrupted,0,,80.000,",
            "failed,0,,120.000,",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn event_times_are_accessible() {
        let log = sample_log();
        let times: Vec<f64> = log.events().iter().map(|e| e.time().as_secs()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "ordered");
    }
}
