//! Model-state snapshots for suspend/resume (§5.1).
//!
//! "Suspend and resume requires that training state is saved and
//! synchronized with the AppStat database, which allows any machine to
//! receive the state and resume training." The engine serializes each
//! suspended job's training state with this codec, stores the bytes in the
//! AppStat DB (padded to the workload's sampled snapshot size, which
//! models the framework/CRIU state the synthetic jobs do not have), and
//! verifies the round trip on resume — so the state path is really
//! exercised, not mocked.
//!
//! The format is a small, versioned, hand-rolled binary layout (magic,
//! version, job id, epoch count, performance history as f64 bits) — no
//! serde dependency required.

use hyperdrive_types::{Error, JobId, LearningCurve, Result};

/// Magic bytes identifying a HyperDrive snapshot.
const MAGIC: [u8; 4] = *b"HDSS";
/// Current codec version.
const VERSION: u8 = 1;

/// The training state captured when a job suspends.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSnapshot {
    /// The suspended job.
    pub job: JobId,
    /// Epochs completed at suspension.
    pub epochs_done: u32,
    /// Observed performance history (value per epoch).
    pub history: Vec<f64>,
}

impl JobSnapshot {
    /// Captures a snapshot from a job's observed curve.
    pub fn capture(job: JobId, epochs_done: u32, curve: &LearningCurve) -> Self {
        JobSnapshot { job, epochs_done, history: curve.values().collect() }
    }

    /// Serializes the snapshot. The payload is followed by zero padding up
    /// to `min_size` bytes when the encoded form is smaller — modelling the
    /// full framework/process state (weights, optimizer moments, CRIU
    /// pages) that dominates real snapshot sizes.
    pub fn encode(&self, min_size: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(min_size.max(21 + self.history.len() * 8));
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&self.job.raw().to_le_bytes());
        out.extend_from_slice(&self.epochs_done.to_le_bytes());
        out.extend_from_slice(&(self.history.len() as u32).to_le_bytes());
        for v in &self.history {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        if out.len() < min_size {
            out.resize(min_size, 0);
        }
        out
    }

    /// Deserializes a snapshot previously produced by
    /// [`JobSnapshot::encode`] (trailing padding is ignored).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TraceFormat`] for truncated or corrupted bytes,
    /// wrong magic, or unsupported versions.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let err = |what: &str| Error::TraceFormat(format!("snapshot: {what}"));
        if bytes.len() < 21 {
            return Err(err("truncated header"));
        }
        if bytes[..4] != MAGIC {
            return Err(err("bad magic"));
        }
        if bytes[4] != VERSION {
            return Err(err("unsupported version"));
        }
        let job = JobId::new(u64::from_le_bytes(bytes[5..13].try_into().expect("length checked")));
        let epochs_done = u32::from_le_bytes(bytes[13..17].try_into().expect("length checked"));
        let n = u32::from_le_bytes(bytes[17..21].try_into().expect("length checked")) as usize;
        let need = 21 + n * 8;
        if bytes.len() < need {
            return Err(err("truncated history"));
        }
        let mut history = Vec::with_capacity(n);
        for i in 0..n {
            let off = 21 + i * 8;
            let bits = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("length checked"));
            let v = f64::from_bits(bits);
            if !v.is_finite() {
                return Err(err("non-finite history value"));
            }
            history.push(v);
        }
        Ok(JobSnapshot { job, epochs_done, history })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperdrive_types::{MetricKind, SimTime};

    fn curve(values: &[f64]) -> LearningCurve {
        let mut c = LearningCurve::new(MetricKind::Accuracy);
        for (i, v) in values.iter().enumerate() {
            c.push(i as u32 + 1, SimTime::from_mins(i as f64 + 1.0), *v);
        }
        c
    }

    #[test]
    fn round_trips_exactly() {
        let snap = JobSnapshot::capture(JobId::new(42), 3, &curve(&[0.1, 0.25, 0.4]));
        let bytes = snap.encode(0);
        let back = JobSnapshot::decode(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn padding_is_applied_and_ignored() {
        let snap = JobSnapshot::capture(JobId::new(1), 2, &curve(&[0.1, 0.2]));
        let bytes = snap.encode(4096);
        assert_eq!(bytes.len(), 4096);
        assert_eq!(JobSnapshot::decode(&bytes).unwrap(), snap);
        // Larger payload than min_size: no truncation.
        let big = JobSnapshot::capture(JobId::new(1), 2, &curve(&[0.5; 100]));
        assert!(big.encode(10).len() > 10);
    }

    #[test]
    fn corruption_is_detected() {
        let snap = JobSnapshot::capture(JobId::new(7), 1, &curve(&[0.3]));
        let good = snap.encode(0);

        assert!(JobSnapshot::decode(&good[..10]).is_err(), "truncated");
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(JobSnapshot::decode(&bad_magic).is_err(), "magic");
        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(JobSnapshot::decode(&bad_version).is_err(), "version");
        let mut bad_len = good.clone();
        bad_len[17] = 200; // claims 200 history entries
        assert!(JobSnapshot::decode(&bad_len).is_err(), "length");
        let mut bad_value = good;
        for b in &mut bad_value[21..29] {
            *b = 0xFF; // NaN bits
        }
        assert!(JobSnapshot::decode(&bad_value).is_err(), "NaN history");
    }

    #[test]
    fn empty_history_is_valid() {
        let snap = JobSnapshot { job: JobId::new(0), epochs_done: 0, history: Vec::new() };
        assert_eq!(JobSnapshot::decode(&snap.encode(64)).unwrap(), snap);
    }
}
