//! A dense-keyed job map.
//!
//! Every hot per-event structure in the engine — job entries, outstanding
//! tokens, recorded curves — is keyed by [`JobId`], and the workload
//! builders hand out ids densely from zero. A hash map pays a SipHash plus
//! a bucket-probe cache miss on every event for keys that are really just
//! small indexes; this map is a plain `Vec<Option<T>>` indexed by the raw
//! id, so lookups are one bounds check and one predictable load.
//!
//! Sparse ids still work (the slot vector grows to the highest inserted
//! id), they just waste slots — the framework itself never produces them.
//! The only iteration offered is [`values`](DenseMap::values), which walks
//! ascending id order: deterministic by construction, unlike hash-map
//! iteration, so it cannot leak scheduling nondeterminism.

use hyperdrive_types::JobId;

/// A map from [`JobId`] to `T` backed by a dense slot vector.
#[derive(Debug, Clone)]
pub(crate) struct DenseMap<T> {
    slots: Vec<Option<T>>,
    len: usize,
}

impl<T> Default for DenseMap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DenseMap<T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        DenseMap { slots: Vec::new(), len: 0 }
    }

    /// Creates an empty map with slots preallocated for ids `0..n`.
    pub fn with_capacity(n: usize) -> Self {
        DenseMap { slots: Vec::with_capacity(n), len: 0 }
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn slot(&self, id: JobId) -> Option<&Option<T>> {
        self.slots.get(id.raw() as usize)
    }

    /// The value for `id`, if present.
    pub fn get(&self, id: JobId) -> Option<&T> {
        self.slot(id).and_then(Option::as_ref)
    }

    /// Mutable access to the value for `id`, if present.
    pub fn get_mut(&mut self, id: JobId) -> Option<&mut T> {
        self.slots.get_mut(id.raw() as usize).and_then(Option::as_mut)
    }

    /// True if `id` has a value.
    pub fn contains(&self, id: JobId) -> bool {
        self.get(id).is_some()
    }

    /// Inserts a value, returning the previous one if any.
    pub fn insert(&mut self, id: JobId, value: T) -> Option<T> {
        let idx = id.raw() as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let old = self.slots[idx].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value for `id`, if present.
    pub fn remove(&mut self, id: JobId) -> Option<T> {
        let old = self.slots.get_mut(id.raw() as usize).and_then(Option::take);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// The value for `id`, inserting `make()` first if absent.
    pub fn or_insert_with(&mut self, id: JobId, make: impl FnOnce() -> T) -> &mut T {
        let idx = id.raw() as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let slot = &mut self.slots[idx];
        if slot.is_none() {
            *slot = Some(make());
            self.len += 1;
        }
        slot.as_mut().expect("slot just filled")
    }

    /// All present values in ascending id order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// All present entries in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|v| (JobId::new(i as u64), v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: DenseMap<u32> = DenseMap::with_capacity(2);
        assert_eq!(m.len(), 0);
        assert_eq!(m.insert(JobId::new(5), 50), None);
        assert_eq!(m.insert(JobId::new(0), 1), None);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(JobId::new(5)), Some(&50));
        assert_eq!(m.insert(JobId::new(5), 51), Some(50));
        assert_eq!(m.len(), 2);
        assert!(m.contains(JobId::new(0)));
        assert!(!m.contains(JobId::new(3)));
        assert_eq!(m.remove(JobId::new(5)), Some(51));
        assert_eq!(m.remove(JobId::new(5)), None);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(JobId::new(5)), None);
    }

    #[test]
    fn or_insert_with_creates_once() {
        let mut m: DenseMap<Vec<u32>> = DenseMap::new();
        m.or_insert_with(JobId::new(2), Vec::new).push(7);
        m.or_insert_with(JobId::new(2), || panic!("already present")).push(8);
        assert_eq!(m.get(JobId::new(2)), Some(&vec![7, 8]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn values_walk_ascending_ids() {
        let mut m: DenseMap<&str> = DenseMap::new();
        m.insert(JobId::new(4), "d");
        m.insert(JobId::new(1), "b");
        m.insert(JobId::new(9), "z");
        let got: Vec<&str> = m.values().copied().collect();
        assert_eq!(got, ["b", "d", "z"]);
        assert_eq!(m.get_mut(JobId::new(9)).map(|v| std::mem::replace(v, "y")), Some("z"));
        assert_eq!(m.get(JobId::new(9)), Some(&"y"));
    }
}
