//! The live executor: real threads, real (scaled) time.
//!
//! One node-agent thread runs per machine, mirroring the paper's §4.2 Node
//! Agent daemon: it receives job-execution requests from the scheduler,
//! performs the work (here: sleeping the scaled epoch duration in place of
//! GPU training), and reports application statistics back over a channel
//! (standing in for GRPC). The scheduler thread multiplexes agent reports
//! into the shared [`ExperimentEngine`].
//!
//! Unlike the discrete-event simulator, this executor exhibits genuine
//! nondeterminism — thread scheduling and timer jitter reorder events —
//! which is precisely what the Fig. 12a simulator-validation experiment
//! compares against.

use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, Sender};

use hyperdrive_types::{JobId, SimTime};

use crate::engine::{Command, EngineEvent, ExperimentEngine};
use crate::experiment::{ExperimentResult, ExperimentSpec, ExperimentWorkload};
use crate::policy::SchedulingPolicy;

/// A request from the scheduler to a node agent. Work completes at an
/// absolute wall-clock deadline computed from the triggering event's
/// virtual time plus the work's virtual duration — so scheduler stalls
/// (e.g. curve-model fits) do not serialize with training, mirroring the
/// paper's §5.2 "overlap training and prediction" design. A dispatch that
/// arrives after its deadline completes immediately: that residue is the
/// genuine contention the live executor measures.
#[derive(Debug, Clone, Copy)]
enum AgentRequest {
    /// Train one epoch until `deadline`, then report.
    RunEpoch { job: JobId, deadline: Instant },
    /// Capture job state until `deadline`, then report.
    Suspend { job: JobId, deadline: Instant },
    /// Exit the agent loop.
    Shutdown,
}

/// A report from a node agent to the scheduler, stamped at completion.
#[derive(Debug, Clone, Copy)]
struct AgentReply {
    event: EngineEvent,
    completed_at: Instant,
}

/// Runs one experiment on the live (threaded) executor.
///
/// `time_scale` is virtual seconds per wall-clock second: with
/// `time_scale = 600.0`, a 60-second training epoch occupies its node-agent
/// thread for 100 ms of real time. Experiment timestamps are measured from
/// the wall clock and converted back to virtual time, so all reported
/// durations are comparable with simulator output.
///
/// # Panics
///
/// Panics if `time_scale` is not positive or the spec has no machines.
pub fn run_live(
    policy: &mut dyn SchedulingPolicy,
    workload: &ExperimentWorkload,
    spec: ExperimentSpec,
    time_scale: f64,
) -> ExperimentResult {
    assert!(time_scale > 0.0 && time_scale.is_finite(), "time_scale must be positive");
    let machines = spec.machines;
    assert!(machines > 0, "need at least one machine");

    let (reply_tx, reply_rx): (Sender<AgentReply>, Receiver<AgentReply>) = unbounded();
    let agent_txs: Vec<Sender<AgentRequest>> = Vec::with_capacity(machines);

    std::thread::scope(|scope| {
        let mut agent_txs = agent_txs;
        for _ in 0..machines {
            let (tx, rx): (Sender<AgentRequest>, Receiver<AgentRequest>) = unbounded();
            let reply_tx = reply_tx.clone();
            scope.spawn(move || node_agent_loop(rx, reply_tx));
            agent_txs.push(tx);
        }
        drop(reply_tx);

        let mut engine = ExperimentEngine::new(policy, workload, spec);
        let started = Instant::now();
        let mut in_flight = 0usize;

        // Converts a virtual completion time into a wall-clock deadline.
        let wall_deadline = |virtual_time: SimTime| -> Instant {
            started + Duration::from_secs_f64(virtual_time.as_secs() / time_scale)
        };

        // Dispatches follow-up commands for an event that completed at
        // virtual time `base`: each command's work finishes `duration`
        // after the event that caused it, regardless of how long the
        // scheduler spent deciding.
        let dispatch = |cmds: Vec<Command>, base: SimTime, in_flight: &mut usize| -> bool {
            let mut stop = false;
            for cmd in cmds {
                match cmd {
                    Command::RunEpoch { job, machine, duration, .. } => {
                        agent_txs[machine.raw() as usize]
                            .send(AgentRequest::RunEpoch {
                                job,
                                deadline: wall_deadline(base + duration),
                            })
                            .expect("agent alive");
                        *in_flight += 1;
                    }
                    Command::Suspend { job, machine, latency } => {
                        agent_txs[machine.raw() as usize]
                            .send(AgentRequest::Suspend {
                                job,
                                deadline: wall_deadline(base + latency),
                            })
                            .expect("agent alive");
                        *in_flight += 1;
                    }
                    Command::Stop => stop = true,
                }
            }
            stop
        };

        let mut stopping = dispatch(engine.start(), SimTime::ZERO, &mut in_flight);
        let mut last_now = SimTime::ZERO;
        while in_flight > 0 && !stopping {
            let reply = reply_rx.recv().expect("agents alive while work in flight");
            in_flight -= 1;
            // Events are stamped when the agent completed the work, not
            // when the scheduler got around to processing the report.
            let now = SimTime::from_secs(
                reply.completed_at.duration_since(started).as_secs_f64() * time_scale,
            );
            last_now = last_now.max(now);
            let cmds = engine.handle(reply.event, now);
            stopping = dispatch(cmds, now, &mut in_flight) || engine.stopped();
        }

        for tx in &agent_txs {
            // Agents may have exited already if their channel dropped.
            let _ = tx.send(AgentRequest::Shutdown);
        }
        engine.into_result(last_now)
    })
}

fn node_agent_loop(rx: Receiver<AgentRequest>, reply_tx: Sender<AgentReply>) {
    let run = |deadline: Instant, event: EngineEvent| -> bool {
        let now = Instant::now();
        if deadline > now {
            std::thread::sleep(deadline - now);
        }
        // A dispatch that arrived past its deadline completes now: the
        // overshoot is real scheduler-induced contention.
        reply_tx.send(AgentReply { event, completed_at: Instant::now() }).is_ok()
    };
    while let Ok(req) = rx.recv() {
        let alive = match req {
            AgentRequest::RunEpoch { job, deadline } => {
                run(deadline, EngineEvent::EpochDone { job })
            }
            AgentRequest::Suspend { job, deadline } => {
                run(deadline, EngineEvent::SuspendDone { job })
            }
            AgentRequest::Shutdown => return,
        };
        if !alive {
            return; // scheduler gone
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DefaultPolicy;
    use hyperdrive_types::SimTime;
    use hyperdrive_workload::CifarWorkload;

    #[test]
    fn live_default_runs_to_completion() {
        let w = CifarWorkload::new().with_max_epochs(3);
        let ew = crate::experiment::ExperimentWorkload::from_workload(&w, 4, 5);
        let mut policy = DefaultPolicy::new();
        let spec = ExperimentSpec::new(2).with_stop_on_target(false);
        // 60s epochs at 60000x -> ~1ms each.
        let result = run_live(&mut policy, &ew, spec, 60_000.0);
        assert_eq!(result.total_epochs, 4 * 3);
        assert!(result
            .outcomes
            .iter()
            .all(|o| o.end == crate::experiment::JobEnd::Completed));
    }

    #[test]
    fn live_stops_on_target() {
        let w = CifarWorkload::new().with_max_epochs(50);
        let ew = crate::experiment::ExperimentWorkload::from_workload(&w, 4, 5).with_target(0.0);
        let mut policy = DefaultPolicy::new();
        let result = run_live(&mut policy, &ew, ExperimentSpec::new(2), 60_000.0);
        assert!(result.reached_target());
        assert!(result.total_epochs < 200, "stopped early, not exhaustively");
    }

    #[test]
    fn live_respects_tmax() {
        let w = CifarWorkload::new().with_max_epochs(1000);
        let ew = crate::experiment::ExperimentWorkload::from_workload(&w, 2, 5);
        let mut policy = DefaultPolicy::new();
        let spec = ExperimentSpec::new(1)
            .with_tmax(SimTime::from_secs(180.0))
            .with_stop_on_target(false);
        let result = run_live(&mut policy, &ew, spec, 60_000.0);
        assert!(result.end_time >= SimTime::from_secs(180.0));
        assert!(result.total_epochs < 50, "Tmax bounded the run");
    }

    #[test]
    fn live_suspend_resume_path_works() {
        // A policy that suspends at every epoch forces the full live
        // suspend machinery: snapshot deadline, SuspendDone reply, resume
        // with restored state on a (possibly different) machine.
        struct SuspendEverything;
        impl crate::policy::SchedulingPolicy for SuspendEverything {
            fn name(&self) -> &str {
                "suspend-everything"
            }
            fn on_iteration_finish(
                &mut self,
                _event: &crate::policy::JobEvent,
                ctx: &mut dyn crate::policy::SchedulerContext,
            ) -> crate::policy::JobDecision {
                if ctx.idle_job_count() > 0 {
                    crate::policy::JobDecision::Suspend
                } else {
                    crate::policy::JobDecision::Continue
                }
            }
        }
        let w = CifarWorkload::new().with_max_epochs(3);
        let ew = crate::experiment::ExperimentWorkload::from_workload(&w, 4, 5);
        let mut policy = SuspendEverything;
        let spec = ExperimentSpec::new(2).with_stop_on_target(false);
        let result = run_live(&mut policy, &ew, spec, 60_000.0);
        assert_eq!(result.total_epochs, 12, "all epochs complete across suspensions");
        assert!(!result.suspend_events.is_empty(), "suspensions really happened");
        let resumes = result
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, crate::events::SchedulerEvent::Started { resumed: true, .. }))
            .count();
        assert!(resumes > 0, "suspended jobs resumed");
    }

    #[test]
    fn virtual_time_tracks_epoch_durations() {
        let w = CifarWorkload::new().with_max_epochs(2);
        let ew = crate::experiment::ExperimentWorkload::from_workload(&w, 1, 5);
        let expected: f64 =
            ew.jobs[0].profile.epoch_durations().iter().map(|d| d.as_secs()).sum();
        let mut policy = DefaultPolicy::new();
        let spec = ExperimentSpec::new(1).with_stop_on_target(false);
        let result = run_live(&mut policy, &ew, spec, 60_000.0);
        // Wall time converts back to roughly the profile's virtual length
        // (sleep overshoot only makes it longer).
        assert!(result.end_time.as_secs() >= expected * 0.9);
        assert!(result.end_time.as_secs() <= expected * 3.0 + 60.0);
    }
}
