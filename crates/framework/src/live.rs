//! The live executor: real threads, real (scaled) time.
//!
//! One node-agent thread runs per machine, mirroring the paper's §4.2 Node
//! Agent daemon: it receives job-execution requests from the scheduler,
//! performs the work (here: sleeping the scaled epoch duration in place of
//! GPU training), and reports application statistics back over a channel
//! (standing in for GRPC). The scheduler thread multiplexes agent reports
//! into the shared [`ExperimentEngine`].
//!
//! The scheduler guards every outstanding request with a heartbeat
//! watchdog: if an agent's report does not arrive within its deadline plus
//! [`LiveFaultPlan::watchdog_grace`], the agent is declared stalled, a
//! fresh agent thread replaces it, and the engine rolls the hosted job
//! back to its last snapshot ([`ExperimentEngine::inject_agent_stall`]).
//! [`run_live_with_faults`] exercises that path deliberately by wedging
//! chosen requests.
//!
//! Unlike the discrete-event simulator, this executor exhibits genuine
//! nondeterminism — thread scheduling and timer jitter reorder events —
//! which is precisely what the Fig. 12a simulator-validation experiment
//! compares against.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use hyperdrive_types::{JobId, MachineId, SimTime};

use crate::engine::{Command, EngineEvent, ExperimentEngine};
use crate::experiment::{ExperimentResult, ExperimentSpec, ExperimentWorkload};
use crate::fault::FaultPlan;
use crate::journal::Journal;
use crate::policy::SchedulingPolicy;

/// Set by the process-wide SIGTERM handler installed with
/// [`install_sigterm_handler`]; every live run polls it between events.
static SIGTERM_RECEIVED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigterm(_signum: i32) {
    SIGTERM_RECEIVED.store(true, Ordering::SeqCst);
}

/// Installs a process-wide SIGTERM handler that asks every in-flight live
/// run to shut down gracefully: the scheduler loop notices within ~250 ms,
/// seals its write-ahead journal (marking the run interrupted, not
/// complete), broadcasts shutdown to the node agents, and drains their
/// threads before returning a partial result. A later process can resume
/// from the sealed journal.
///
/// Idempotent; a no-op on non-Unix targets.
pub fn install_sigterm_handler() {
    #[cfg(unix)]
    {
        const SIGTERM: i32 = 15;
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
        }
        unsafe {
            signal(SIGTERM, on_sigterm);
        }
    }
}

/// Fault instructions for the live executor.
///
/// Unlike the simulator's virtual-time [`FaultPlan`], live faults are
/// expressed against the observable request stream: "swallow the nth
/// request sent to machine m". A wedged request never produces a report,
/// so the scheduler's watchdog must detect and repair the stall — the
/// live analogue of a hung node agent.
#[derive(Debug, Clone)]
pub struct LiveFaultPlan {
    /// `(machine index, nth request to that machine, 1-based)` pairs to
    /// swallow. The agent accepts the request and then goes silent.
    pub wedge_requests: Vec<(u64, u32)>,
    /// Extra wall-clock slack past a request's deadline before the
    /// watchdog declares the agent stalled. Must comfortably exceed
    /// ordinary sleep overshoot at the chosen time scale.
    pub watchdog_grace: Duration,
    /// Per-run graceful-shutdown flag: when it flips to `true` the
    /// scheduler loop seals the journal, drains the agents, and returns a
    /// partial result — the in-process analogue of SIGTERM (which sets a
    /// process-wide flag every run also polls; see
    /// [`install_sigterm_handler`]).
    pub shutdown: Option<Arc<AtomicBool>>,
}

impl Default for LiveFaultPlan {
    fn default() -> Self {
        LiveFaultPlan {
            wedge_requests: Vec::new(),
            watchdog_grace: Duration::from_secs(1),
            shutdown: None,
        }
    }
}

/// A request from the scheduler to a node agent. Work completes at an
/// absolute wall-clock deadline computed from the triggering event's
/// virtual time plus the work's virtual duration — so scheduler stalls
/// (e.g. curve-model fits) do not serialize with training, mirroring the
/// paper's §5.2 "overlap training and prediction" design. A dispatch that
/// arrives after its deadline completes immediately: that residue is the
/// genuine contention the live executor measures.
#[derive(Debug, Clone, Copy)]
enum AgentRequest {
    /// Train one epoch until `deadline`, then report (unless wedged).
    RunEpoch { job: JobId, deadline: Instant, token: u64, wedge: bool },
    /// Capture job state until `deadline`, then report (unless wedged).
    Suspend { job: JobId, deadline: Instant, token: u64, wedge: bool },
    /// Exit the agent loop.
    Shutdown,
}

/// A report from a node agent to the scheduler, stamped at completion.
#[derive(Debug, Clone, Copy)]
struct AgentReply {
    machine: usize,
    event: EngineEvent,
    completed_at: Instant,
}

/// Scheduler-side bookkeeping shared by dispatch and the watchdog.
struct LiveState {
    agent_txs: Vec<Sender<AgentRequest>>,
    /// Per machine: the token and wall deadline of its outstanding
    /// request. At most one request is in flight per machine.
    inflight: HashMap<usize, (u64, Instant)>,
    /// Requests sent per machine so far (drives wedge matching).
    sent: Vec<u32>,
    wedges: Vec<(u64, u32)>,
    /// Machines whose request channel failed mid-send; the caller repairs
    /// them exactly like watchdog-detected stalls.
    dead_sends: Vec<usize>,
    started: Instant,
    time_scale: f64,
}

impl LiveState {
    fn wall_deadline(&self, virtual_time: SimTime) -> Instant {
        self.started + Duration::from_secs_f64(virtual_time.as_secs() / self.time_scale)
    }

    fn virtual_time(&self, wall: Instant) -> SimTime {
        SimTime::from_secs(wall.duration_since(self.started).as_secs_f64() * self.time_scale)
    }

    fn is_wedged(&self, machine: usize, nth: u32) -> bool {
        self.wedges.iter().any(|&(m, n)| m == machine as u64 && n == nth)
    }

    /// Dispatches follow-up commands for an event that completed at
    /// virtual time `base`: each command's work finishes `duration` after
    /// the event that caused it, regardless of how long the scheduler
    /// spent deciding. Returns whether a `Stop` was seen; send failures
    /// land in `dead_sends` instead of panicking. Borrows the batch so the
    /// scheduler loop can reuse one command buffer for the whole run.
    fn dispatch(&mut self, cmds: &[Command], base: SimTime) -> bool {
        let mut stop = false;
        for cmd in cmds {
            let (machine, request, token, deadline) = match *cmd {
                Command::RunEpoch { job, machine, duration, token, .. } => {
                    let m = machine.raw() as usize;
                    self.sent[m] += 1;
                    let deadline = self.wall_deadline(base + duration);
                    let wedge = self.is_wedged(m, self.sent[m]);
                    (m, AgentRequest::RunEpoch { job, deadline, token, wedge }, token, deadline)
                }
                Command::Suspend { job, machine, latency, token } => {
                    let m = machine.raw() as usize;
                    self.sent[m] += 1;
                    let deadline = self.wall_deadline(base + latency);
                    let wedge = self.is_wedged(m, self.sent[m]);
                    (m, AgentRequest::Suspend { job, deadline, token, wedge }, token, deadline)
                }
                Command::Stop => {
                    stop = true;
                    continue;
                }
            };
            if self.agent_txs[machine].send(request).is_ok() {
                self.inflight.insert(machine, (token, deadline));
            } else {
                self.dead_sends.push(machine);
            }
        }
        stop
    }
}

/// Runs one experiment on the live (threaded) executor.
///
/// `time_scale` is virtual seconds per wall-clock second: with
/// `time_scale = 600.0`, a 60-second training epoch occupies its node-agent
/// thread for 100 ms of real time. Experiment timestamps are measured from
/// the wall clock and converted back to virtual time, so all reported
/// durations are comparable with simulator output.
///
/// # Panics
///
/// Panics if `time_scale` is not positive or the spec has no machines.
pub fn run_live(
    policy: &mut dyn SchedulingPolicy,
    workload: &ExperimentWorkload,
    spec: ExperimentSpec,
    time_scale: f64,
) -> ExperimentResult {
    run_live_with_faults(policy, workload, spec, time_scale, &LiveFaultPlan::default())
}

/// Runs one experiment on the live executor while wedging the requests
/// named in `plan` (see [`LiveFaultPlan`]).
///
/// The watchdog detects each wedged request `watchdog_grace` past its
/// deadline, restarts the machine's node agent, and reschedules the
/// interrupted job from its last snapshot. Stale reports from replaced
/// agents are dropped by token. Probabilistic engine-side faults (suspend
/// failure, snapshot corruption) come from the `FaultPlan` embedded in
/// none here — the live plan covers only agent-level faults; compose with
/// the simulator for the rest.
///
/// # Panics
///
/// Panics if `time_scale` is not positive or the spec has no machines.
pub fn run_live_with_faults(
    policy: &mut dyn SchedulingPolicy,
    workload: &ExperimentWorkload,
    spec: ExperimentSpec,
    time_scale: f64,
    plan: &LiveFaultPlan,
) -> ExperimentResult {
    run_live_inner(policy, workload, spec, time_scale, plan, None)
}

/// [`run_live_with_faults`] with an explicit write-ahead [`Journal`]
/// instead of the `HYPERDRIVE_JOURNAL` environment wiring. On SIGTERM (or
/// the plan's shutdown flag) the journal is sealed before the node agents
/// drain, so a later process can recover the run.
///
/// # Panics
///
/// Panics if `time_scale` is not positive or the spec has no machines.
pub fn run_live_journaled(
    policy: &mut dyn SchedulingPolicy,
    workload: &ExperimentWorkload,
    spec: ExperimentSpec,
    time_scale: f64,
    plan: &LiveFaultPlan,
    journal: Journal,
) -> ExperimentResult {
    run_live_inner(policy, workload, spec, time_scale, plan, Some(journal))
}

fn run_live_inner(
    policy: &mut dyn SchedulingPolicy,
    workload: &ExperimentWorkload,
    spec: ExperimentSpec,
    time_scale: f64,
    plan: &LiveFaultPlan,
    journal: Option<Journal>,
) -> ExperimentResult {
    assert!(time_scale > 0.0 && time_scale.is_finite(), "time_scale must be positive");
    let machines = spec.machines;
    assert!(machines > 0, "need at least one machine");
    let grace = plan.watchdog_grace;

    let (reply_tx, reply_rx): (Sender<AgentReply>, Receiver<AgentReply>) = unbounded();

    std::thread::scope(|scope| {
        let mut state = LiveState {
            agent_txs: Vec::with_capacity(machines),
            inflight: HashMap::new(),
            sent: vec![0; machines],
            wedges: plan.wedge_requests.clone(),
            dead_sends: Vec::new(),
            started: Instant::now(),
            time_scale,
        };
        for machine in 0..machines {
            state.agent_txs.push(spawn_agent(scope, machine, reply_tx.clone()));
        }

        let mut engine = match journal {
            Some(j) => {
                ExperimentEngine::with_journal(policy, workload, spec, &FaultPlan::none(), j)
            }
            None => {
                ExperimentEngine::with_fault_injection(policy, workload, spec, &FaultPlan::none())
            }
        };
        let mut last_now = SimTime::ZERO;
        let shutdown_requested = || {
            SIGTERM_RECEIVED.load(Ordering::Relaxed)
                || plan.shutdown.as_ref().is_some_and(|f| f.load(Ordering::Relaxed))
        };
        let mut interrupted = false;

        // One reusable command buffer for the whole run — the engine
        // writes each event's follow-up batch in place, mirroring the
        // simulator's allocation-free steady-state loop.
        let mut cmds: Vec<Command> = Vec::new();
        engine.start_into(&mut cmds);
        let mut stopping = state.dispatch(&cmds, SimTime::ZERO);
        while !state.inflight.is_empty() && !stopping {
            if shutdown_requested() {
                interrupted = true;
                break;
            }
            // Repair machines whose channel died mid-dispatch: restart the
            // agent and treat the undeliverable work as a stall.
            while let Some(machine) = state.dead_sends.pop() {
                state.agent_txs[machine] = spawn_agent(scope, machine, reply_tx.clone());
                let now = state.virtual_time(Instant::now());
                last_now = last_now.max(now);
                engine.inject_agent_stall_into(MachineId::new(machine as u64), now, &mut cmds);
                stopping = state.dispatch(&cmds, now) || stopping || engine.stopped();
            }
            if state.inflight.is_empty() || stopping {
                break;
            }

            let next_watchdog = state
                .inflight
                .values()
                .map(|&(_, deadline)| deadline + grace)
                .min()
                .expect("inflight is non-empty");
            // Cap the wait so a shutdown request is noticed promptly even
            // with far-off watchdog deadlines.
            let wait = next_watchdog
                .saturating_duration_since(Instant::now())
                .min(Duration::from_millis(250));
            match reply_rx.recv_timeout(wait) {
                Ok(reply) => {
                    // Events are stamped when the agent completed the
                    // work, not when the scheduler got around to
                    // processing the report.
                    let now = state.virtual_time(reply.completed_at);
                    last_now = last_now.max(now);
                    let token = match reply.event {
                        EngineEvent::EpochDone { token, .. }
                        | EngineEvent::SuspendDone { token, .. } => token,
                    };
                    if state.inflight.get(&reply.machine).map(|&(t, _)| t) == Some(token) {
                        state.inflight.remove(&reply.machine);
                    }
                    // Stale reports (from agents replaced after a stall)
                    // are dropped inside the engine by token mismatch.
                    engine.handle_into(reply.event, now, &mut cmds);
                    stopping = state.dispatch(&cmds, now) || engine.stopped();
                }
                Err(RecvTimeoutError::Timeout) => {
                    let wall_now = Instant::now();
                    let overdue: Vec<usize> = state
                        .inflight
                        .iter()
                        .filter(|&(_, &(_, deadline))| deadline + grace <= wall_now)
                        .map(|(&machine, _)| machine)
                        .collect();
                    for machine in overdue {
                        state.inflight.remove(&machine);
                        // The old agent may be wedged forever; dropping
                        // its sender lets it exit if it ever wakes.
                        state.agent_txs[machine] = spawn_agent(scope, machine, reply_tx.clone());
                        let now = state.virtual_time(wall_now);
                        last_now = last_now.max(now);
                        engine.inject_agent_stall_into(
                            MachineId::new(machine as u64),
                            now,
                            &mut cmds,
                        );
                        stopping = state.dispatch(&cmds, now) || stopping || engine.stopped();
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break, // all agents gone
            }
        }

        if interrupted {
            // Seal first — the journal must hit disk before we start
            // tearing the process down — then drain the agents. The
            // result below is partial; the sealed (incomplete) journal is
            // what a successor process recovers from.
            engine.seal_journal();
        }
        for tx in &state.agent_txs {
            // Agents may have exited already if their channel dropped.
            let _ = tx.send(AgentRequest::Shutdown);
        }
        engine.into_result(last_now)
    })
}

/// Starts a node-agent thread for `machine`, returning its request channel.
fn spawn_agent<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    machine: usize,
    reply_tx: Sender<AgentReply>,
) -> Sender<AgentRequest> {
    let (tx, rx): (Sender<AgentRequest>, Receiver<AgentRequest>) = unbounded();
    scope.spawn(move || node_agent_loop(machine, rx, reply_tx));
    tx
}

fn node_agent_loop(machine: usize, rx: Receiver<AgentRequest>, reply_tx: Sender<AgentReply>) {
    let run = |deadline: Instant, event: EngineEvent, wedge: bool| -> bool {
        let now = Instant::now();
        if deadline > now {
            std::thread::sleep(deadline - now);
        }
        if wedge {
            // The injected fault: work "completes" but the report is never
            // sent — the scheduler's watchdog has to notice.
            return true;
        }
        // A dispatch that arrived past its deadline completes now: the
        // overshoot is real scheduler-induced contention.
        reply_tx.send(AgentReply { machine, event, completed_at: Instant::now() }).is_ok()
    };
    while let Ok(req) = rx.recv() {
        let alive = match req {
            AgentRequest::RunEpoch { job, deadline, token, wedge } => {
                run(deadline, EngineEvent::EpochDone { job, token }, wedge)
            }
            AgentRequest::Suspend { job, deadline, token, wedge } => {
                run(deadline, EngineEvent::SuspendDone { job, token }, wedge)
            }
            AgentRequest::Shutdown => return,
        };
        if !alive {
            return; // scheduler gone
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::SchedulerEvent;
    use crate::policy::DefaultPolicy;
    use hyperdrive_types::SimTime;
    use hyperdrive_workload::CifarWorkload;

    #[test]
    fn live_default_runs_to_completion() {
        let w = CifarWorkload::new().with_max_epochs(3);
        let ew = crate::experiment::ExperimentWorkload::from_workload(&w, 4, 5);
        let mut policy = DefaultPolicy::new();
        let spec = ExperimentSpec::new(2).with_stop_on_target(false);
        // 60s epochs at 60000x -> ~1ms each.
        let result = run_live(&mut policy, &ew, spec, 60_000.0);
        assert_eq!(result.total_epochs, 4 * 3);
        assert!(result.outcomes.iter().all(|o| o.end == crate::experiment::JobEnd::Completed));
    }

    #[test]
    fn live_stops_on_target() {
        let w = CifarWorkload::new().with_max_epochs(50);
        let ew = crate::experiment::ExperimentWorkload::from_workload(&w, 4, 5).with_target(0.0);
        let mut policy = DefaultPolicy::new();
        let result = run_live(&mut policy, &ew, ExperimentSpec::new(2), 60_000.0);
        assert!(result.reached_target());
        assert!(result.total_epochs < 200, "stopped early, not exhaustively");
    }

    #[test]
    fn live_respects_tmax() {
        let w = CifarWorkload::new().with_max_epochs(1000);
        let ew = crate::experiment::ExperimentWorkload::from_workload(&w, 2, 5);
        let mut policy = DefaultPolicy::new();
        let spec =
            ExperimentSpec::new(1).with_tmax(SimTime::from_secs(180.0)).with_stop_on_target(false);
        let result = run_live(&mut policy, &ew, spec, 60_000.0);
        assert!(result.end_time >= SimTime::from_secs(180.0));
        assert!(result.total_epochs < 50, "Tmax bounded the run");
    }

    #[test]
    fn live_suspend_resume_path_works() {
        // A policy that suspends at every epoch forces the full live
        // suspend machinery: snapshot deadline, SuspendDone reply, resume
        // with restored state on a (possibly different) machine.
        struct SuspendEverything;
        impl crate::policy::SchedulingPolicy for SuspendEverything {
            fn name(&self) -> &str {
                "suspend-everything"
            }
            fn on_iteration_finish(
                &mut self,
                _event: &crate::policy::JobEvent,
                ctx: &mut dyn crate::policy::SchedulerContext,
            ) -> crate::policy::JobDecision {
                if ctx.idle_job_count() > 0 {
                    crate::policy::JobDecision::Suspend
                } else {
                    crate::policy::JobDecision::Continue
                }
            }
        }
        let w = CifarWorkload::new().with_max_epochs(3);
        let ew = crate::experiment::ExperimentWorkload::from_workload(&w, 4, 5);
        let mut policy = SuspendEverything;
        let spec = ExperimentSpec::new(2).with_stop_on_target(false);
        let result = run_live(&mut policy, &ew, spec, 60_000.0);
        assert_eq!(result.total_epochs, 12, "all epochs complete across suspensions");
        assert!(!result.suspend_events.is_empty(), "suspensions really happened");
        let resumes = result
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SchedulerEvent::Started { resumed: true, .. }))
            .count();
        assert!(resumes > 0, "suspended jobs resumed");
    }

    #[test]
    fn virtual_time_tracks_epoch_durations() {
        let w = CifarWorkload::new().with_max_epochs(2);
        let ew = crate::experiment::ExperimentWorkload::from_workload(&w, 1, 5);
        let expected: f64 = ew.jobs[0].profile.epoch_durations().iter().map(|d| d.as_secs()).sum();
        let mut policy = DefaultPolicy::new();
        let spec = ExperimentSpec::new(1).with_stop_on_target(false);
        let result = run_live(&mut policy, &ew, spec, 60_000.0);
        // Wall time converts back to roughly the profile's virtual length
        // (sleep overshoot only makes it longer).
        assert!(result.end_time.as_secs() >= expected * 0.9);
        assert!(result.end_time.as_secs() <= expected * 3.0 + 60.0);
    }

    #[test]
    fn wedged_agent_is_detected_and_job_reruns() {
        let w = CifarWorkload::new().with_max_epochs(2);
        let ew = crate::experiment::ExperimentWorkload::from_workload(&w, 4, 5);
        let mut policy = DefaultPolicy::new();
        let spec = ExperimentSpec::new(2).with_stop_on_target(false);
        let plan = LiveFaultPlan {
            // Swallow the second request ever sent to machine 0.
            wedge_requests: vec![(0, 2)],
            watchdog_grace: Duration::from_millis(100),
            ..LiveFaultPlan::default()
        };
        let result = run_live_with_faults(&mut policy, &ew, spec, 60_000.0, &plan);
        assert_eq!(result.faults.agent_stalls, 1, "the wedge was detected");
        assert!(
            result.outcomes.iter().all(|o| o.end == crate::experiment::JobEnd::Completed),
            "interrupted work re-ran to completion: {:?}",
            result.outcomes.iter().map(|o| o.end).collect::<Vec<_>>()
        );
        let surviving: u64 = result.outcomes.iter().map(|o| u64::from(o.epochs)).sum();
        assert_eq!(surviving, 4 * 2, "every job still trained every epoch");
        assert_eq!(
            result.total_epochs,
            surviving + result.faults.lost_epochs,
            "lost-epoch accounting holds"
        );
    }

    #[test]
    fn shutdown_flag_seals_journal_and_stops_early() {
        // The in-process analogue of SIGTERM: flip the plan's shutdown
        // flag mid-run and check the loop seals the journal, drains the
        // agents, and returns a partial result.
        let w = CifarWorkload::new().with_max_epochs(60);
        let ew = crate::experiment::ExperimentWorkload::from_workload(&w, 4, 5);
        let spec = ExperimentSpec::new(2).with_stop_on_target(false);
        let mut policy = DefaultPolicy::new();
        let meta = crate::journal::run_meta(policy.name(), &ew, &spec, &FaultPlan::none());
        let journal = Journal::in_memory(meta);
        let flag = Arc::new(AtomicBool::new(false));
        let plan = LiveFaultPlan { shutdown: Some(flag.clone()), ..LiveFaultPlan::default() };
        let stopper = std::thread::spawn({
            let flag = flag.clone();
            move || {
                std::thread::sleep(Duration::from_millis(40));
                flag.store(true, Ordering::SeqCst);
            }
        });
        // 60s epochs at 60000x -> ~1ms each; 240 epochs across 2 machines
        // is ~120 ms of work, so the 40 ms shutdown lands mid-run.
        let result = run_live_journaled(&mut policy, &ew, spec, 60_000.0, &plan, journal.clone());
        stopper.join().unwrap();
        assert!(journal.is_sealed(), "shutdown sealed the journal");
        assert!(
            result.total_epochs < 4 * 60,
            "run ended early ({} epochs), not exhaustively",
            result.total_epochs
        );
        let recovered = journal.reopen().unwrap();
        assert!(recovered.sealed, "recovery sees the run was cleanly interrupted");
        assert!(!recovered.inputs.is_empty(), "journal holds the consumed inputs");
    }

    #[test]
    fn sigterm_handler_installs_without_error() {
        // Can't deliver a real SIGTERM inside the test harness without
        // killing the other tests, but installation itself must be safe
        // and idempotent.
        install_sigterm_handler();
        install_sigterm_handler();
    }

    #[test]
    fn stalled_job_resumes_from_last_snapshot() {
        // One job, one machine; the policy snapshots after epoch 1, then
        // the resumed epoch-2 request is wedged. Detection must restore
        // the job from the snapshot: zero epochs lost, resumed start.
        struct SuspendOnce {
            suspended: bool,
        }
        impl crate::policy::SchedulingPolicy for SuspendOnce {
            fn name(&self) -> &str {
                "suspend-once"
            }
            fn on_iteration_finish(
                &mut self,
                _event: &crate::policy::JobEvent,
                _ctx: &mut dyn crate::policy::SchedulerContext,
            ) -> crate::policy::JobDecision {
                if self.suspended {
                    crate::policy::JobDecision::Continue
                } else {
                    self.suspended = true;
                    crate::policy::JobDecision::Suspend
                }
            }
        }
        let w = CifarWorkload::new().with_max_epochs(4);
        let ew = crate::experiment::ExperimentWorkload::from_workload(&w, 1, 5);
        let mut policy = SuspendOnce { suspended: false };
        let spec = ExperimentSpec::new(1).with_stop_on_target(false);
        let plan = LiveFaultPlan {
            // Request 1 = epoch 1, request 2 = suspend, request 3 = the
            // resumed epoch 2 — wedge that one.
            wedge_requests: vec![(0, 3)],
            watchdog_grace: Duration::from_millis(100),
            ..LiveFaultPlan::default()
        };
        let result = run_live_with_faults(&mut policy, &ew, spec, 60_000.0, &plan);
        assert_eq!(result.faults.agent_stalls, 1);
        assert_eq!(
            result.faults.lost_epochs, 0,
            "epoch 2 was in flight, not complete; the snapshot preserved epoch 1"
        );
        assert_eq!(result.outcomes[0].end, crate::experiment::JobEnd::Completed);
        assert_eq!(result.outcomes[0].epochs, 4);
        let resumed_starts = result
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, SchedulerEvent::Started { resumed: true, .. }))
            .count();
        assert!(
            resumed_starts >= 2,
            "resume after suspend and again after the stall, got {resumed_starts}"
        );
    }
}
