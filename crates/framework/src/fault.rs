//! Fault injection: seeded, deterministic schedules of cluster failures.
//!
//! HyperDrive's suspend/resume state path (§5.1) exists so long-running
//! explorations survive real clusters, where machines crash, node agents
//! wedge, and snapshots go missing. A [`FaultPlan`] is a reproducible
//! schedule of such faults:
//!
//! * **Machine crash / recovery** — timed events; a crashed machine is
//!   marked dead in the Resource Manager, any in-flight work on it is
//!   lost, and the hosted job rolls back to its last snapshot.
//! * **Node-agent stall** — the next completion report from a machine is
//!   lost; the scheduler detects it by timeout (the live executor's
//!   heartbeat watchdog, or a scheduled detection event in the simulator)
//!   and reschedules the job. The machine itself survives.
//! * **Delayed report** — the next completion report from a machine
//!   arrives late; policies observe stale statistics but no work is lost.
//! * **Suspend failure** — a snapshot capture fails at suspend time; the
//!   job rolls back to its previous snapshot (probabilistic, evaluated by
//!   the engine at each suspend decision).
//! * **Snapshot corruption** — stored snapshot bytes are corrupted in
//!   place; the corruption is only discovered when a resume fails to
//!   decode them, and the job restarts from scratch (probabilistic,
//!   evaluated at each snapshot store).
//!
//! Timed faults are injected by the executor (virtual time in the
//! simulator, watchdog timeouts in the live executor); probabilistic
//! faults are evaluated inside the engine from a dedicated RNG stream so
//! an empty plan leaves fault-free runs byte-identical.
//!
//! Retries are capped by a [`RetryPolicy`]: each interruption of a job
//! counts against its retry budget and adds an exponential-backoff restart
//! penalty; a job that exhausts the budget enters the `Failed` state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hyperdrive_types::{MachineId, SimTime};

/// What a timed fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The machine dies; work on it is lost and it stops accepting jobs.
    MachineCrash,
    /// The machine returns to service, idle.
    MachineRecover,
    /// The next completion report from this machine is lost. The loss is
    /// detected `detection` after the report would have arrived.
    AgentStall {
        /// Detection latency (heartbeat timeout).
        detection: SimTime,
    },
    /// The next completion report from this machine arrives `delay` late.
    ReplyDelay {
        /// Extra report latency.
        delay: SimTime,
    },
    /// Process-level chaos: the scheduler *process* itself dies once the
    /// engine has journaled `at_event` inputs, and is recovered from its
    /// write-ahead journal (see [`crate::journal`]). The `machine` field
    /// of the carrying [`FaultEvent`] is ignored. Executors without
    /// journal-backed recovery skip this kind.
    EngineCrash {
        /// Journal position (input count) at which the process dies.
        at_event: u64,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires (virtual time).
    pub at: SimTime,
    /// The machine it targets.
    pub machine: MachineId,
    /// What happens.
    pub kind: FaultKind,
}

/// Caps and prices job restarts after interruptions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Interruptions a job tolerates before it is marked `Failed`.
    pub max_retries: u32,
    /// Restart penalty after the first interruption.
    pub backoff: SimTime,
    /// Multiplier applied to the penalty for each further interruption.
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, backoff: SimTime::from_secs(30.0), backoff_factor: 2.0 }
    }
}

/// Ceiling on any single restart penalty (one year): keeps extreme retry
/// counts or backoff factors from producing infinite virtual times.
const MAX_PENALTY_SECS: f64 = 365.0 * 24.0 * 3600.0;

impl RetryPolicy {
    /// The restart penalty for a job's `retry`-th interruption (1-based):
    /// `backoff * backoff_factor^(retry-1)`.
    ///
    /// The exponent is capped at 63 — `retry as i32` would wrap negative
    /// past `i32::MAX`, collapsing the penalty to near zero exactly when
    /// it should be largest — and the result is clamped to one year so a
    /// pathological factor cannot produce an infinite time.
    pub fn penalty(&self, retry: u32) -> SimTime {
        if retry == 0 {
            return SimTime::ZERO;
        }
        let exp = retry.saturating_sub(1).min(63) as i32;
        let scale = self.backoff_factor.powi(exp);
        SimTime::from_secs((self.backoff.as_secs() * scale).min(MAX_PENALTY_SECS))
    }

    /// [`penalty`](Self::penalty) plus up to 10% deterministic jitter,
    /// derived from the fault-plan seed and a per-job stream id (no
    /// global RNG): concurrent victims of one correlated fault back off
    /// to distinct restart times, yet every run replays exactly.
    pub fn penalty_with_jitter(&self, retry: u32, fault_seed: u64, stream: u64) -> SimTime {
        let base = self.penalty(retry);
        if base == SimTime::ZERO {
            return base;
        }
        let h = crate::journal::mix64(
            crate::journal::mix64(fault_seed ^ 0x4A17_7E12_BAC0_FF5E)
                ^ crate::journal::mix64(stream).wrapping_add(u64::from(retry)),
        );
        // Top 53 bits -> uniform fraction in [0, 1).
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        SimTime::from_secs((base.as_secs() * (1.0 + 0.1 * frac)).min(MAX_PENALTY_SECS))
    }
}

/// Rates and distributions from which [`FaultPlan::generate`] draws a
/// schedule. All rates are per machine.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Seed for the plan's RNG stream (independent of workload/spec seeds).
    pub seed: u64,
    /// Faults are generated over `[0, horizon)`.
    pub horizon: SimTime,
    /// Machine crashes per machine-hour.
    pub crash_rate_per_hour: f64,
    /// Mean downtime before a crashed machine recovers.
    pub mean_downtime: SimTime,
    /// Agent stalls (lost reports) per machine-hour.
    pub stall_rate_per_hour: f64,
    /// How long a lost report takes to detect (heartbeat timeout).
    pub stall_detection: SimTime,
    /// Delayed reports per machine-hour.
    pub delay_rate_per_hour: f64,
    /// Mean extra latency of a delayed report.
    pub mean_delay: SimTime,
    /// Probability a suspend's snapshot capture fails.
    pub suspend_fail_prob: f64,
    /// Probability a stored snapshot is silently corrupted.
    pub snapshot_corrupt_prob: f64,
    /// Retry cap and backoff applied to interrupted jobs.
    pub retry: RetryPolicy,
}

impl FaultConfig {
    /// A config whose fault intensity scales with a single knob:
    /// `intensity = 1.0` means one crash and one stall per machine per
    /// ten hours plus mild probabilistic faults; `0.0` disables
    /// everything.
    pub fn with_intensity(seed: u64, horizon: SimTime, intensity: f64) -> Self {
        assert!(intensity >= 0.0 && intensity.is_finite(), "fault intensity must be non-negative");
        FaultConfig {
            seed,
            horizon,
            crash_rate_per_hour: 0.1 * intensity,
            mean_downtime: SimTime::from_mins(20.0),
            stall_rate_per_hour: 0.1 * intensity,
            stall_detection: SimTime::from_mins(2.0),
            delay_rate_per_hour: 0.2 * intensity,
            mean_delay: SimTime::from_mins(5.0),
            suspend_fail_prob: (0.02 * intensity).min(0.5),
            snapshot_corrupt_prob: (0.02 * intensity).min(0.5),
            retry: RetryPolicy::default(),
        }
    }
}

/// A seeded, deterministic schedule of injectable faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Timed faults, sorted by time (ties keep generation order).
    pub events: Vec<FaultEvent>,
    /// Probability a suspend's snapshot capture fails.
    pub suspend_fail_prob: f64,
    /// Probability a stored snapshot is silently corrupted.
    pub snapshot_corrupt_prob: f64,
    /// Retry cap and backoff for interrupted jobs.
    pub retry: RetryPolicy,
    /// Seed for the engine's probabilistic-fault RNG stream.
    pub seed: u64,
}

impl FaultPlan {
    /// The empty plan: no timed faults, zero probabilities. Running with
    /// this plan is byte-identical to running without the fault subsystem.
    pub fn none() -> Self {
        FaultPlan {
            events: Vec::new(),
            suspend_fail_prob: 0.0,
            snapshot_corrupt_prob: 0.0,
            retry: RetryPolicy::default(),
            seed: 0,
        }
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.suspend_fail_prob == 0.0 && self.snapshot_corrupt_prob == 0.0
    }

    /// Draws a deterministic schedule for a cluster of `machines`
    /// machines. The same config always produces the same plan.
    ///
    /// Crash/recovery pairs never overlap on one machine: the next crash
    /// is drawn after the previous recovery. Every crash inside the
    /// horizon gets a recovery event (possibly past the horizon), so no
    /// machine stays dead forever.
    pub fn generate(machines: usize, config: &FaultConfig) -> Self {
        // Every (machine, fault-class) pair draws from its own seeded
        // stream: raising one rate (or adding machines) never perturbs
        // another stream's draw sequence. Within a stream, a higher rate
        // only shrinks the mean of each inter-arrival gap, so every fault
        // time is pointwise non-increasing in intensity and the fault
        // count is provably monotone (proptest-pinned below).
        let stream = |machine: u64, class: u64| {
            StdRng::seed_from_u64(crate::journal::mix64(
                crate::journal::mix64(config.seed ^ 0xFA17)
                    ^ machine.wrapping_shl(2).wrapping_add(class),
            ))
        };
        let mut events = Vec::new();
        let horizon = config.horizon.as_secs();
        for m in 0..machines {
            let machine = MachineId::new(m as u64);
            // Crash/recovery pairs.
            if config.crash_rate_per_hour > 0.0 {
                let mut rng = stream(m as u64, 0);
                let mean_gap = 3600.0 / config.crash_rate_per_hour;
                let mut t = exp_sample(&mut rng, mean_gap);
                while t < horizon {
                    let downtime = exp_sample(&mut rng, config.mean_downtime.as_secs()).max(1.0);
                    events.push(FaultEvent {
                        at: SimTime::from_secs(t),
                        machine,
                        kind: FaultKind::MachineCrash,
                    });
                    events.push(FaultEvent {
                        at: SimTime::from_secs(t + downtime),
                        machine,
                        kind: FaultKind::MachineRecover,
                    });
                    t += downtime + exp_sample(&mut rng, mean_gap);
                }
            }
            // Lost reports (agent stalls).
            if config.stall_rate_per_hour > 0.0 {
                let mut rng = stream(m as u64, 1);
                let mean_gap = 3600.0 / config.stall_rate_per_hour;
                let mut t = exp_sample(&mut rng, mean_gap);
                while t < horizon {
                    events.push(FaultEvent {
                        at: SimTime::from_secs(t),
                        machine,
                        kind: FaultKind::AgentStall { detection: config.stall_detection },
                    });
                    t += exp_sample(&mut rng, mean_gap);
                }
            }
            // Delayed reports.
            if config.delay_rate_per_hour > 0.0 {
                let mut rng = stream(m as u64, 2);
                let mean_gap = 3600.0 / config.delay_rate_per_hour;
                let mut t = exp_sample(&mut rng, mean_gap);
                while t < horizon {
                    let delay = exp_sample(&mut rng, config.mean_delay.as_secs()).max(1.0);
                    events.push(FaultEvent {
                        at: SimTime::from_secs(t),
                        machine,
                        kind: FaultKind::ReplyDelay { delay: SimTime::from_secs(delay) },
                    });
                    t += exp_sample(&mut rng, mean_gap);
                }
            }
        }
        events.sort_by_key(|e| e.at);
        FaultPlan {
            events,
            suspend_fail_prob: config.suspend_fail_prob,
            snapshot_corrupt_prob: config.snapshot_corrupt_prob,
            retry: config.retry,
            seed: config.seed,
        }
    }
}

/// Draws from an exponential distribution with the given mean (seconds).
fn exp_sample<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen_range(0.0..1.0);
    -(1.0 - u).ln() * mean
}

/// Counters describing what the fault subsystem did during one run.
/// Present (all zero) even in fault-free runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Machine crashes injected.
    pub machine_crashes: u64,
    /// Machines returned to service.
    pub machine_recoveries: u64,
    /// Lost-report stalls detected.
    pub agent_stalls: u64,
    /// Jobs knocked off a machine (crash, stall, or failed suspend).
    pub interruptions: u64,
    /// Completed epochs rolled back and re-run.
    pub lost_epochs: u64,
    /// Suspend attempts whose snapshot capture failed.
    pub suspend_failures: u64,
    /// Resumes that found an undecodable snapshot and restarted from
    /// scratch.
    pub snapshot_corruptions: u64,
    /// Jobs that exhausted their retry budget.
    pub failed_jobs: u64,
    /// Machines still dead when the experiment ended.
    pub dead_machines_at_end: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(seed: u64) -> FaultConfig {
        FaultConfig::with_intensity(seed, SimTime::from_hours(24.0), 5.0)
    }

    #[test]
    fn empty_plan_is_empty() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(plan.events.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FaultPlan::generate(4, &config(7));
        let b = FaultPlan::generate(4, &config(7));
        assert_eq!(a, b);
        let c = FaultPlan::generate(4, &config(8));
        assert_ne!(a.events, c.events, "different seeds differ");
    }

    #[test]
    fn events_are_time_sorted_and_crashes_pair_with_recoveries() {
        let plan = FaultPlan::generate(3, &config(42));
        assert!(!plan.events.is_empty(), "intensity 5 over 24h injects faults");
        assert!(plan.events.windows(2).all(|w| w[0].at <= w[1].at), "events sorted by time");
        let crashes = plan.events.iter().filter(|e| e.kind == FaultKind::MachineCrash).count();
        let recoveries = plan.events.iter().filter(|e| e.kind == FaultKind::MachineRecover).count();
        assert_eq!(crashes, recoveries, "every crash has a recovery");
    }

    #[test]
    fn crash_windows_do_not_overlap_per_machine() {
        let plan = FaultPlan::generate(2, &config(11));
        for m in 0..2u64 {
            let mut up = true;
            for e in plan.events.iter().filter(|e| e.machine.raw() == m) {
                match e.kind {
                    FaultKind::MachineCrash => {
                        assert!(up, "crash while already down on machine {m}");
                        up = false;
                    }
                    FaultKind::MachineRecover => {
                        assert!(!up, "recover while up on machine {m}");
                        up = true;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn zero_intensity_generates_nothing() {
        let cfg = FaultConfig::with_intensity(1, SimTime::from_hours(24.0), 0.0);
        let plan = FaultPlan::generate(8, &cfg);
        assert!(plan.is_empty());
    }

    #[test]
    fn retry_penalty_backs_off_exponentially() {
        let retry =
            RetryPolicy { max_retries: 3, backoff: SimTime::from_secs(10.0), backoff_factor: 2.0 };
        assert_eq!(retry.penalty(0), SimTime::ZERO);
        assert_eq!(retry.penalty(1), SimTime::from_secs(10.0));
        assert_eq!(retry.penalty(2), SimTime::from_secs(20.0));
        assert_eq!(retry.penalty(3), SimTime::from_secs(40.0));
    }

    #[test]
    fn retry_penalty_saturates_instead_of_overflowing() {
        let retry = RetryPolicy { max_retries: u32::MAX, ..RetryPolicy::default() };
        let huge = retry.penalty(u32::MAX);
        assert!(huge.as_secs().is_finite(), "penalty stays finite at u32::MAX retries");
        assert_eq!(huge, SimTime::from_secs(MAX_PENALTY_SECS), "clamped to the ceiling");
        // Monotone (weakly) all the way out: the i32 cast it replaces
        // wrapped negative past i32::MAX and collapsed to ~zero.
        assert!(retry.penalty(1_000_000) >= retry.penalty(100));
        assert!(retry.penalty(u32::MAX) >= retry.penalty(1_000_000));
    }

    #[test]
    fn jittered_penalty_is_deterministic_bounded_and_stream_dependent() {
        let retry = RetryPolicy::default();
        let a = retry.penalty_with_jitter(2, 7, 3);
        let b = retry.penalty_with_jitter(2, 7, 3);
        assert_eq!(a, b, "same inputs, same jitter");
        let base = retry.penalty(2).as_secs();
        assert!(a.as_secs() >= base && a.as_secs() < base * 1.1 + 1e-9, "jitter within [0, 10%)");
        let other_stream = retry.penalty_with_jitter(2, 7, 4);
        let other_seed = retry.penalty_with_jitter(2, 8, 3);
        assert_ne!(a, other_stream, "streams de-synchronize");
        assert_ne!(a, other_seed, "seed feeds the jitter");
        assert_eq!(retry.penalty_with_jitter(0, 7, 3), SimTime::ZERO);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn count(plan: &FaultPlan, pred: fn(&FaultKind) -> bool) -> usize {
            plan.events.iter().filter(|e| pred(&e.kind)).count()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn generate_is_deterministic_for_equal_inputs(
                seed in 0u64..1000,
                machines in 1usize..6,
                intensity in 0.0f64..12.0,
            ) {
                let cfg = FaultConfig::with_intensity(seed, SimTime::from_hours(12.0), intensity);
                prop_assert_eq!(
                    FaultPlan::generate(machines, &cfg),
                    FaultPlan::generate(machines, &cfg)
                );
            }

            #[test]
            fn fault_counts_are_monotone_in_intensity(
                seed in 0u64..1000,
                machines in 1usize..6,
                lo in 0.0f64..8.0,
                extra in 0.0f64..8.0,
            ) {
                let h = SimTime::from_hours(12.0);
                let a = FaultPlan::generate(machines, &FaultConfig::with_intensity(seed, h, lo));
                let b =
                    FaultPlan::generate(machines, &FaultConfig::with_intensity(seed, h, lo + extra));
                prop_assert!(
                    count(&a, |k| matches!(k, FaultKind::MachineCrash))
                        <= count(&b, |k| matches!(k, FaultKind::MachineCrash)),
                    "crashes monotone"
                );
                prop_assert!(
                    count(&a, |k| matches!(k, FaultKind::AgentStall { .. }))
                        <= count(&b, |k| matches!(k, FaultKind::AgentStall { .. })),
                    "stalls monotone"
                );
                prop_assert!(
                    count(&a, |k| matches!(k, FaultKind::ReplyDelay { .. }))
                        <= count(&b, |k| matches!(k, FaultKind::ReplyDelay { .. })),
                    "delays monotone"
                );
                prop_assert!(a.events.len() <= b.events.len(), "total monotone");
                prop_assert!(a.suspend_fail_prob <= b.suspend_fail_prob);
                prop_assert!(a.snapshot_corrupt_prob <= b.snapshot_corrupt_prob);
            }
        }
    }
}
