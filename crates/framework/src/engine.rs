//! The experiment engine: executor-independent scheduling logic.
//!
//! Both execution backends — the §7 discrete-event simulator
//! (`hyperdrive-sim`) and the thread-based live executor
//! ([`crate::live`]) — drive the same [`ExperimentEngine`]. The engine owns
//! the Resource Manager, Job Manager, and AppStat DB, fires the SAP
//! up-calls, and translates policy decisions into abstract [`Command`]s
//! ("run epoch e of job j on machine m for duration d"). Executors differ
//! only in *how* commands elapse: the simulator advances a virtual clock;
//! the live executor hands them to node-agent threads that sleep scaled
//! wall-clock time.
//!
//! This mirrors the paper's architecture: the scheduler is oblivious to
//! where jobs physically run, and Node Agents are delay-and-report servers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hyperdrive_types::{DomainKnowledge, Error, JobId, LearningCurve, MachineId, Result, SimTime};

use crate::appstat::{AppStatDb, SuspendEvent};
use crate::dense::DenseMap;
use crate::events::{EventLog, SchedulerEvent};
use crate::experiment::{
    ExperimentResult, ExperimentSpec, ExperimentWorkload, JobEnd, JobOutcome, TargetMilestone,
};
use crate::fault::{FaultPlan, FaultStats, RetryPolicy};
use crate::job_manager::{JobManager, JobState};
use crate::journal::{self, Journal, RecoveredJournal, ReplayInput};
use crate::policy::{JobDecision, JobEvent, PrefetchHint, SchedulerContext, SchedulingPolicy};
use crate::resource::ResourceManager;
use crate::snapshot::JobSnapshot;

/// An instruction from the engine to the execution backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Command {
    /// Execute one epoch of `job` on `machine`; report
    /// [`EngineEvent::EpochDone`] after `duration` (which includes any
    /// resume latency).
    RunEpoch {
        /// Job to train.
        job: JobId,
        /// Hosting machine.
        machine: MachineId,
        /// 1-based epoch to execute.
        epoch: u32,
        /// Wall/virtual time the epoch occupies the machine.
        duration: SimTime,
        /// Issue token; the completion event must echo it (see
        /// [`EngineEvent`]).
        token: u64,
    },
    /// Capture `job`'s state on `machine`; report
    /// [`EngineEvent::SuspendDone`] after `latency`.
    Suspend {
        /// Job being suspended.
        job: JobId,
        /// Machine performing the snapshot.
        machine: MachineId,
        /// Snapshot latency.
        latency: SimTime,
        /// Issue token; the completion event must echo it.
        token: u64,
    },
    /// The experiment is over; backends stop delivering events.
    Stop,
}

impl Command {
    /// The issue token carried by work commands (`None` for [`Stop`]).
    ///
    /// [`Stop`]: Command::Stop
    pub fn token(&self) -> Option<u64> {
        match self {
            Command::RunEpoch { token, .. } | Command::Suspend { token, .. } => Some(*token),
            Command::Stop => None,
        }
    }
}

/// A completion notification from the execution backend.
///
/// Every work [`Command`] carries a unique `token` that its completion must
/// echo. When a fault interrupts a job, the engine invalidates the
/// outstanding token, so a completion that arrives late (a reply from a
/// crashed machine's queue, a wedged agent finally answering) no longer
/// matches and is dropped instead of corrupting job state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineEvent {
    /// A previously issued `RunEpoch` finished.
    EpochDone {
        /// The job whose epoch completed.
        job: JobId,
        /// Token echoed from the command.
        token: u64,
    },
    /// A previously issued `Suspend` finished; the job's state is stored.
    SuspendDone {
        /// The suspended job.
        job: JobId,
        /// Token echoed from the command.
        token: u64,
    },
}

/// What [`ExperimentEngine::recover`] replayed out of a journal: the
/// executor uses this to rebuild its delivery state and continue the run.
#[derive(Debug)]
pub struct RecoveredRun {
    /// Number of journaled inputs replayed.
    pub replayed: usize,
    /// The replayed inputs, in original order (the simulator pops its
    /// rebuilt queue against these to verify delivery order).
    pub inputs: Vec<ReplayInput>,
    /// The command batch each input produced, with the time it was
    /// produced at. Identical to the batches of the original run.
    pub batches: Vec<(SimTime, Vec<Command>)>,
    /// Executor time of the last replayed input (zero if none).
    pub now: SimTime,
    /// True if the run had already stopped (goal reached or `Tmax`).
    pub stopped: bool,
    /// True if the journal was sealed (the original run ended or drained
    /// on SIGTERM before the crash).
    pub sealed: bool,
}

/// Executor-independent experiment state; implements [`SchedulerContext`]
/// for policy up-calls.
struct EngineCore<'w> {
    workload: &'w ExperimentWorkload,
    spec: ExperimentSpec,
    rm: ResourceManager,
    jm: JobManager,
    db: AppStatDb,
    rng: StdRng,
    now: SimTime,
    pending: Vec<Command>,
    stopped: bool,
    time_to_target: Option<SimTime>,
    winner: Option<JobId>,
    current_target: f64,
    milestones: Vec<TargetMilestone>,
    busy_time: Vec<f64>,
    total_epochs: u64,
    log: EventLog,
    /// Next issue token; strictly monotonic, never reused.
    next_token: u64,
    /// Token of each job's in-flight command. A completion whose token is
    /// not here is stale (superseded by a fault) and is dropped.
    outstanding: DenseMap<u64>,
    /// RNG stream for probabilistic faults. Never touched while both
    /// probabilities are zero, so fault-free runs stay byte-identical to
    /// runs without the fault subsystem.
    fault_rng: StdRng,
    suspend_fail_prob: f64,
    snapshot_corrupt_prob: f64,
    retry: RetryPolicy,
    /// Interruptions suffered per job (counts against `retry.max_retries`).
    retries: DenseMap<u32>,
    /// Epochs covered by each job's stored snapshot, as the engine
    /// believes them (corruption is only discovered at resume).
    snapshot_epochs: DenseMap<u32>,
    /// Backoff penalty to charge the next start of an interrupted job.
    restart_penalty: DenseMap<SimTime>,
    stats: FaultStats,
    /// Write-ahead journal (no-op when disabled). Journaling is pure
    /// output: nothing the engine does depends on it, so journal-on runs
    /// stay byte-identical to journal-off runs.
    journal: Journal,
    /// Draws taken from `rng` so far — journaled as RNG checkpoints so
    /// replay verifies stream positions, not just outcomes.
    rng_draws: u64,
    /// Draws taken from `fault_rng` so far.
    fault_rng_draws: u64,
    /// The fault plan's seed; deterministic retry jitter derives from it.
    fault_seed: u64,
    /// Boundary at which the policy wants speculative fit-prefetch hints
    /// ([`SchedulingPolicy::prefetch_boundary`] snapshotted at
    /// construction); `None` — the default — disables hinting entirely.
    prefetch_boundary: Option<u32>,
    /// Hints buffered while a turn runs: `issue_epoch` fires inside
    /// [`SchedulerContext`] up-calls where the policy is borrowed, so
    /// the sink buffers `(job, epoch, completion, value)` and
    /// `finish_turn_into` drains it to the policy. Never journaled —
    /// prefetch is pure compute-ahead and must leave every journal and
    /// log record untouched.
    prefetch_hints: Vec<(JobId, u32, SimTime, f64)>,
}

impl<'w> EngineCore<'w> {
    fn profile_of(&self, job: JobId) -> &hyperdrive_workload::JobProfile {
        self.workload.profile(job)
    }

    /// Records a scheduler event in the log *and* the journal (as a
    /// verification record): every externally visible transition goes
    /// through here.
    fn record(&mut self, event: SchedulerEvent) {
        self.journal.transition(&event);
        self.log.record(event);
    }

    fn charge(&mut self, job: JobId, time: SimTime) {
        self.busy_time[job.raw() as usize] += time.as_secs();
    }

    fn issue_token(&mut self, job: JobId) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.outstanding.insert(job, token);
        token
    }

    /// Issues the next epoch of `job` on `machine`, including `extra`
    /// latency (resume cost and/or retry backoff).
    fn issue_epoch(&mut self, job: JobId, machine: MachineId, extra: SimTime) {
        let next_epoch = self.jm.epochs_done(job).expect("job registered") + 1;
        let duration = self.profile_of(job).epoch_duration(next_epoch) + extra;
        self.charge(job, duration);
        let token = self.issue_token(job);
        self.pending.push(Command::RunEpoch { job, machine, epoch: next_epoch, duration, token });
        // Speculative prefetch hook: the epoch just issued will surface at
        // a decision boundary, so tell the policy *now* — its fit overlaps
        // with every event processed until the epoch completes. The
        // executor reports exactly `value_at(next_epoch)` at `now +
        // duration` (fault interruptions cancel the token, and `forget`
        // reaps any stale speculation), so the hint predicts the
        // observation the boundary fit would use. Epochs at `max_epochs`
        // complete the job instead of reaching `on_iteration_finish`.
        if let Some(b) = self.prefetch_boundary {
            let profile = self.profile_of(job);
            if next_epoch.is_multiple_of(b) && next_epoch < profile.max_epochs() {
                let value = profile.value_at(next_epoch);
                self.prefetch_hints.push((job, next_epoch, self.now + duration, value));
            }
        }
    }

    /// Knocks `job` off `machine` after a fault: invalidates its in-flight
    /// command, rolls it back to its last snapshot (or scratch), and either
    /// re-queues it with a backoff penalty or — once its retry budget is
    /// exhausted — marks it failed. `release` returns the machine to the
    /// pool (stall / failed suspend); a crashed machine is already dead
    /// and must not be released.
    fn interrupt(&mut self, job: JobId, machine: MachineId, release: bool) {
        self.outstanding.remove(job);
        let epochs_done = self.jm.epochs_done(job).unwrap_or(0);
        let rollback_to = self.snapshot_epochs.get(job).copied().unwrap_or(0);
        let has_snapshot = self.snapshot_epochs.contains(job);
        let lost = epochs_done.saturating_sub(rollback_to);
        self.stats.interruptions += 1;
        self.stats.lost_epochs += u64::from(lost);
        self.record(SchedulerEvent::Interrupted {
            job,
            machine,
            time: self.now,
            lost_epochs: lost,
        });
        self.jm.interrupt_job(job, rollback_to, has_snapshot).expect("live job interrupts");
        self.db.truncate_stats(job, rollback_to);
        if release {
            self.rm.release_machine(machine).expect("held machine releases");
        }
        let retries = self.retries.or_insert_with(job, || 0);
        *retries += 1;
        let attempt = *retries;
        if attempt > self.retry.max_retries {
            self.jm.fail_job(job).expect("interrupted job fails");
            self.record(SchedulerEvent::Failed { job, time: self.now });
            self.stats.failed_jobs += 1;
            self.restart_penalty.remove(job);
        } else {
            // Deterministic jitter (derived from the fault seed and job,
            // no global RNG) de-synchronizes retry stampedes after a
            // correlated fault while keeping runs replayable.
            let penalty = self.retry.penalty_with_jitter(attempt, self.fault_seed, job.raw());
            self.restart_penalty.insert(job, penalty);
        }
    }

    fn stop(&mut self) {
        if !self.stopped {
            self.stopped = true;
            self.pending.push(Command::Stop);
        }
    }

    /// True once a job's observed curve satisfies the experiment's goal at
    /// the *current* target: the workload's solved condition (sustained
    /// trailing mean over its window) if it has one, otherwise a plain
    /// threshold on the latest value.
    fn goal_reached(&self, curve: &LearningCurve, value: f64) -> bool {
        match &self.workload.domain.solved {
            Some(cond) => {
                curve.len() >= cond.window
                    && curve.trailing_mean(cond.window).is_some_and(|m| m >= self.current_target)
            }
            None => value >= self.current_target,
        }
    }
}

impl SchedulerContext for EngineCore<'_> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn tmax(&self) -> SimTime {
        self.spec.tmax
    }

    fn target(&self) -> f64 {
        self.current_target
    }

    fn total_slots(&self) -> usize {
        // Dead machines are invisible capacity: policies observe crashes
        // only as a shrunken cluster through this existing up-call.
        self.rm.alive_count()
    }

    fn idle_slots(&self) -> usize {
        self.rm.idle_count()
    }

    fn domain(&self) -> &DomainKnowledge {
        &self.workload.domain
    }

    fn max_epochs(&self) -> u32 {
        self.workload.max_epochs
    }

    fn eval_boundary(&self) -> u32 {
        self.workload.eval_boundary
    }

    fn active_jobs(&self) -> &[JobId] {
        self.jm.active_jobs()
    }

    fn running_jobs(&self) -> &[JobId] {
        self.jm.running_jobs()
    }

    fn idle_job_count(&self) -> usize {
        self.jm.idle_len()
    }

    fn curve(&self, job: JobId) -> Option<LearningCurve> {
        self.db.curve_ref(job).cloned()
    }

    fn secondary_curve(&self, job: JobId) -> Option<LearningCurve> {
        self.db.secondary_curve_ref(job).cloned()
    }

    fn epochs_done(&self, job: JobId) -> u32 {
        self.jm.epochs_done(job).unwrap_or(0)
    }

    fn global_best(&self) -> Option<(JobId, f64)> {
        self.db.global_best()
    }

    fn label_job(&mut self, job: JobId, priority: f64) {
        // Unknown jobs and NaN priorities are policy bugs; surface loudly.
        self.jm.label_job(job, priority).expect("label_job on live job");
    }

    fn start_next_idle_job(&mut self) -> Option<JobId> {
        if self.stopped {
            return None;
        }
        let job = self.jm.peek_idle_job()?;
        let machine = self.rm.reserve_idle_machine()?;
        let resumed = self.jm.start_job(job, machine).expect("idle job starts");
        let mut extra = if resumed {
            // §5.1: resuming on any machine restores state from the
            // AppStat DB. Decode and verify the stored snapshot; a
            // snapshot that is missing, undecodable, or inconsistent with
            // the Job Manager (fault injection corrupts payloads in
            // place) is discovered exactly here, and the job restarts
            // from scratch rather than crashing the scheduler.
            let believed_epochs = self.jm.epochs_done(job).expect("job registered");
            let valid = self
                .db
                .snapshot(job)
                .and_then(|bytes| JobSnapshot::decode(bytes).ok())
                .is_some_and(|s| s.job == job && s.epochs_done == believed_epochs);
            if valid {
                self.rng_draws += 1;
                self.workload.suspend.sample_resume(&mut self.rng)
            } else {
                self.stats.snapshot_corruptions += 1;
                self.stats.lost_epochs += u64::from(believed_epochs);
                self.record(SchedulerEvent::SnapshotCorrupted { job, time: self.now });
                self.jm.reset_epochs(job, 0).expect("running job resets");
                self.db.truncate_stats(job, 0);
                self.snapshot_epochs.remove(job);
                SimTime::ZERO
            }
        } else {
            SimTime::ZERO
        };
        if let Some(penalty) = self.restart_penalty.remove(job) {
            extra += penalty;
        }
        self.record(SchedulerEvent::Started { job, machine, time: self.now, resumed });
        self.issue_epoch(job, machine, extra);
        Some(job)
    }

    fn request_stop(&mut self) {
        self.stop();
    }
}

/// Drives one experiment: wires the workload, spec, and policy together
/// and exchanges [`Command`]s/[`EngineEvent`]s with an execution backend.
pub struct ExperimentEngine<'w, 'p> {
    core: EngineCore<'w>,
    policy: &'p mut dyn SchedulingPolicy,
}

impl<'w, 'p> ExperimentEngine<'w, 'p> {
    /// Creates an engine for one run.
    ///
    /// # Panics
    ///
    /// Panics if the workload has no jobs or the spec has no machines.
    pub fn new(
        policy: &'p mut dyn SchedulingPolicy,
        workload: &'w ExperimentWorkload,
        spec: ExperimentSpec,
    ) -> Self {
        Self::with_fault_injection(policy, workload, spec, &FaultPlan::none())
    }

    /// Creates an engine whose probabilistic faults (suspend failure,
    /// snapshot corruption) and retry policy come from `plan`. Timed
    /// faults in the plan are the executor's responsibility — it calls
    /// [`inject_machine_crash`](Self::inject_machine_crash) and friends
    /// when their times come. With [`FaultPlan::none`] this is exactly
    /// [`ExperimentEngine::new`].
    ///
    /// # Panics
    ///
    /// Panics if the workload has no jobs or the spec has no machines.
    pub fn with_fault_injection(
        policy: &'p mut dyn SchedulingPolicy,
        workload: &'w ExperimentWorkload,
        spec: ExperimentSpec,
        plan: &FaultPlan,
    ) -> Self {
        let journal = Journal::from_env(journal::run_meta(policy.name(), workload, &spec, plan));
        Self::with_journal(policy, workload, spec, plan, journal)
    }

    /// Like [`with_fault_injection`](Self::with_fault_injection), but with
    /// an explicit write-ahead [`Journal`] instead of the
    /// `HYPERDRIVE_JOURNAL` environment wiring. Pass
    /// [`Journal::disabled`] to journal nothing.
    pub fn with_journal(
        policy: &'p mut dyn SchedulingPolicy,
        workload: &'w ExperimentWorkload,
        spec: ExperimentSpec,
        plan: &FaultPlan,
        journal: Journal,
    ) -> Self {
        assert!(!workload.is_empty(), "experiment needs at least one job");
        assert!(spec.machines > 0, "experiment needs at least one machine");
        let mut jm = JobManager::new();
        for job in &workload.jobs {
            jm.add_job(job.job);
        }
        let n_jobs = workload.jobs.len();
        // Steady-state zero-alloc sizing: one command batch can start at
        // most min(jobs, machines) jobs, plus one Suspend and one Stop.
        let batch_cap = n_jobs.min(spec.machines) + 2;
        // Snapshotted once: the prefetch boundary is part of the policy's
        // configuration, not run state, so it cannot drift mid-run.
        let prefetch_boundary = policy.prefetch_boundary(workload.eval_boundary);
        ExperimentEngine {
            core: EngineCore {
                workload,
                spec,
                rm: ResourceManager::new(spec.machines).expect("non-empty cluster"),
                jm,
                db: AppStatDb::with_capacity(
                    workload.domain.metric,
                    n_jobs,
                    workload.max_epochs as usize,
                ),
                rng: StdRng::seed_from_u64(spec.seed ^ 0xE46),
                now: SimTime::ZERO,
                pending: Vec::with_capacity(batch_cap),
                stopped: false,
                time_to_target: None,
                winner: None,
                current_target: workload.target,
                milestones: Vec::new(),
                busy_time: vec![0.0; n_jobs],
                total_epochs: 0,
                // Suspend-free runs log ~2 events per job (Started +
                // Completed/Terminated); 4× covers fault churn without
                // mid-run growth in the common case.
                log: EventLog::with_capacity(4 * n_jobs),
                next_token: 0,
                outstanding: DenseMap::with_capacity(n_jobs),
                fault_rng: StdRng::seed_from_u64(plan.seed ^ 0xFA11),
                suspend_fail_prob: plan.suspend_fail_prob,
                snapshot_corrupt_prob: plan.snapshot_corrupt_prob,
                retry: plan.retry,
                retries: DenseMap::new(),
                snapshot_epochs: DenseMap::new(),
                restart_penalty: DenseMap::new(),
                stats: FaultStats::default(),
                journal,
                rng_draws: 0,
                fault_rng_draws: 0,
                fault_seed: plan.seed,
                prefetch_boundary,
                // One hint per issued epoch at most — the same bound as
                // the command batch — so this never grows mid-run either.
                prefetch_hints: Vec::with_capacity(if prefetch_boundary.is_some() {
                    batch_cap
                } else {
                    0
                }),
            },
            policy,
        }
    }

    /// Recovers an engine from a journal written by an identical run: the
    /// journaled inputs are replayed through a fresh engine (regenerating
    /// and verifying every record byte-for-byte), after which the engine
    /// — and the journal, back in append mode — continue exactly where the
    /// crashed process stopped. The caller must pass the *same* policy
    /// construction, workload, spec, and plan as the original run.
    ///
    /// Returns the engine plus a [`RecoveredRun`] describing the replayed
    /// prefix (the regenerated command batches let an executor rebuild its
    /// delivery queue).
    ///
    /// # Errors
    ///
    /// [`Error::JournalDiverged`] if replay regenerates different records
    /// than the journal holds (non-deterministic policy, changed binary,
    /// or wrong run parameters).
    ///
    /// # Panics
    ///
    /// Panics if the workload has no jobs or the spec has no machines.
    pub fn recover(
        policy: &'p mut dyn SchedulingPolicy,
        workload: &'w ExperimentWorkload,
        spec: ExperimentSpec,
        plan: &FaultPlan,
        recovered: RecoveredJournal,
    ) -> Result<(Self, RecoveredRun)> {
        let RecoveredJournal { journal, inputs, sealed } = recovered;
        let mut engine = Self::with_journal(policy, workload, spec, plan, journal);
        let mut batches = Vec::with_capacity(inputs.len());
        for input in &inputs {
            let (now, cmds) = match *input {
                ReplayInput::Start => (SimTime::ZERO, engine.start()),
                ReplayInput::Event { event, now } => (now, engine.handle(event, now)),
                ReplayInput::MachineCrash { machine, now } => {
                    (now, engine.inject_machine_crash(machine, now))
                }
                ReplayInput::MachineRecovery { machine, now } => {
                    (now, engine.inject_machine_recovery(machine, now))
                }
                ReplayInput::AgentStall { machine, now } => {
                    (now, engine.inject_agent_stall(machine, now))
                }
            };
            batches.push((now, cmds));
        }
        if let Some(err) = engine.core.journal.take_divergence() {
            return Err(err);
        }
        let leftover = engine.core.journal.replay_remaining();
        if leftover > 0 {
            return Err(Error::JournalDiverged {
                record: engine.core.journal.records_appended(),
                detail: format!("replay finished with {leftover} journal records unaccounted for"),
            });
        }
        let now = inputs.iter().rev().find_map(ReplayInput::now).unwrap_or(SimTime::ZERO);
        let stopped = engine.core.stopped;
        let run = RecoveredRun { replayed: inputs.len(), inputs, batches, now, stopped, sealed };
        Ok((engine, run))
    }

    /// Starts the experiment: fires the initial `AllocateJobs` up-call and
    /// returns the first command batch.
    pub fn start(&mut self) -> Vec<Command> {
        let mut out = Vec::new();
        self.start_into(&mut out);
        out
    }

    /// Buffer-reusing form of [`start`](Self::start): the batch is written
    /// into `out` (cleared first). Executors pass the same buffer to every
    /// engine call so the steady-state event path allocates nothing.
    pub fn start_into(&mut self, out: &mut Vec<Command>) {
        self.core.journal.input_start();
        self.policy.allocate_jobs(&mut self.core);
        self.finish_turn_into(out);
    }

    /// Drains the pending command batch into `out` (cleared first) and
    /// journals its digest plus an RNG checkpoint. Every engine entry
    /// point ends here, so each input record is followed by its
    /// transitions and exactly one commands/checkpoint pair. `Command` is
    /// `Copy`, so the drain is a memcpy — no allocation once `out` has
    /// warmed up to the largest batch.
    fn finish_turn_into(&mut self, out: &mut Vec<Command>) {
        self.core.journal.commands(&self.core.pending);
        self.core.journal.rng_checkpoint(self.core.rng_draws, self.core.fault_rng_draws);
        out.clear();
        out.extend_from_slice(&self.core.pending);
        self.core.pending.clear();
        self.drain_prefetch_hints();
    }

    /// Delivers hints buffered by `issue_epoch` to the policy. Runs after
    /// the journal records for the turn are written: hints carry no run
    /// state — they only let the policy start fits early — so they are
    /// invisible to the journal, the event log, and replay verification
    /// (replay re-fires them identically from the same issue points).
    fn drain_prefetch_hints(&mut self) {
        if self.core.prefetch_hints.is_empty() {
            return;
        }
        let max_epochs = self.core.workload.max_epochs;
        let tmax = self.core.spec.tmax;
        // Index loop instead of drain(): the policy up-call borrows
        // `self.policy` mutably while `self.core` stays readable, and the
        // buffer keeps its capacity for the next turn.
        for i in 0..self.core.prefetch_hints.len() {
            let (job, epoch, completion_time, value) = self.core.prefetch_hints[i];
            if let Some(curve) = self.core.db.curve_ref(job) {
                let hint = PrefetchHint { job, epoch, completion_time, value, max_epochs, tmax };
                self.policy.prefetch_hint(&hint, curve);
            }
        }
        self.core.prefetch_hints.clear();
    }

    /// Feeds one completion event back at time `now`, returning follow-up
    /// commands.
    ///
    /// Stale events — whose token no longer matches the job's outstanding
    /// command because a fault invalidated it — are silently dropped.
    ///
    /// # Panics
    ///
    /// Panics on protocol violations (events for jobs in impossible
    /// states), which indicate an executor bug.
    pub fn handle(&mut self, event: EngineEvent, now: SimTime) -> Vec<Command> {
        let mut out = Vec::new();
        self.handle_into(event, now, &mut out);
        out
    }

    /// Buffer-reusing form of [`handle`](Self::handle): follow-up commands
    /// are written into `out` (cleared first).
    pub fn handle_into(&mut self, event: EngineEvent, now: SimTime, out: &mut Vec<Command>) {
        // Journaled before any state changes (write-ahead), including
        // no-op deliveries, so journal positions correspond 1:1 to
        // executor deliveries.
        self.core.journal.input_event(event, now);
        if self.core.stopped {
            return self.finish_turn_into(out);
        }
        let (job, token) = match event {
            EngineEvent::EpochDone { job, token } | EngineEvent::SuspendDone { job, token } => {
                (job, token)
            }
        };
        if self.core.outstanding.get(job) != Some(&token) {
            return self.finish_turn_into(out);
        }
        self.core.outstanding.remove(job);
        self.core.now = self.core.now.max(now);
        match event {
            EngineEvent::EpochDone { job, .. } => self.on_epoch_done(job),
            EngineEvent::SuspendDone { job, .. } => self.on_suspend_done(job),
        }
        // Time budget check (§3.1.1: the search never runs past Tmax).
        if self.core.now >= self.core.spec.tmax {
            self.core.stop();
        }
        self.finish_turn_into(out);
    }

    /// Injects a machine crash at time `now`: the machine goes dead, any
    /// hosted job is interrupted (rolled back to its last snapshot), and
    /// the policy gets a chance to reallocate. Returns follow-up commands.
    /// Crashing an already-dead machine is a no-op.
    pub fn inject_machine_crash(&mut self, machine: MachineId, now: SimTime) -> Vec<Command> {
        let mut out = Vec::new();
        self.inject_machine_crash_into(machine, now, &mut out);
        out
    }

    /// Buffer-reusing form of
    /// [`inject_machine_crash`](Self::inject_machine_crash).
    pub fn inject_machine_crash_into(
        &mut self,
        machine: MachineId,
        now: SimTime,
        out: &mut Vec<Command>,
    ) {
        self.core.journal.input_machine_crash(machine, now);
        if self.core.stopped || self.core.rm.is_dead(machine) {
            return self.finish_turn_into(out);
        }
        self.core.now = self.core.now.max(now);
        self.core.stats.machine_crashes += 1;
        self.core.record(SchedulerEvent::MachineCrashed { machine, time: self.core.now });
        let victim = self.job_on(machine);
        self.core.rm.mark_dead(machine).expect("alive machine crashes");
        if let Some(job) = victim {
            // The machine is dead: do not release it back to the pool.
            self.core.interrupt(job, machine, false);
        }
        self.policy.allocate_jobs(&mut self.core);
        if self.core.now >= self.core.spec.tmax {
            self.core.stop();
        }
        self.finish_turn_into(out);
    }

    /// Injects a machine recovery at time `now`: the machine returns to
    /// the idle pool and the policy may immediately use it. Recovering an
    /// alive machine is a no-op.
    pub fn inject_machine_recovery(&mut self, machine: MachineId, now: SimTime) -> Vec<Command> {
        let mut out = Vec::new();
        self.inject_machine_recovery_into(machine, now, &mut out);
        out
    }

    /// Buffer-reusing form of
    /// [`inject_machine_recovery`](Self::inject_machine_recovery).
    pub fn inject_machine_recovery_into(
        &mut self,
        machine: MachineId,
        now: SimTime,
        out: &mut Vec<Command>,
    ) {
        self.core.journal.input_machine_recovery(machine, now);
        if self.core.stopped || !self.core.rm.is_dead(machine) {
            return self.finish_turn_into(out);
        }
        self.core.now = self.core.now.max(now);
        self.core.rm.mark_recovered(machine).expect("dead machine recovers");
        self.core.stats.machine_recoveries += 1;
        self.core.record(SchedulerEvent::MachineRecovered { machine, time: self.core.now });
        self.policy.allocate_jobs(&mut self.core);
        self.finish_turn_into(out);
    }

    /// Injects a detected node-agent stall at time `now`: the report for
    /// the machine's in-flight work is lost, the hosted job is interrupted
    /// (rolled back to its last snapshot), and the machine — which
    /// survives, only its agent was restarted — returns to the pool.
    /// A stall on a machine hosting nothing is a no-op.
    pub fn inject_agent_stall(&mut self, machine: MachineId, now: SimTime) -> Vec<Command> {
        let mut out = Vec::new();
        self.inject_agent_stall_into(machine, now, &mut out);
        out
    }

    /// Buffer-reusing form of
    /// [`inject_agent_stall`](Self::inject_agent_stall).
    pub fn inject_agent_stall_into(
        &mut self,
        machine: MachineId,
        now: SimTime,
        out: &mut Vec<Command>,
    ) {
        self.core.journal.input_agent_stall(machine, now);
        if self.core.stopped || self.core.rm.is_dead(machine) {
            return self.finish_turn_into(out);
        }
        let Some(job) = self.job_on(machine) else {
            return self.finish_turn_into(out);
        };
        self.core.now = self.core.now.max(now);
        self.core.stats.agent_stalls += 1;
        self.core.interrupt(job, machine, true);
        self.policy.allocate_jobs(&mut self.core);
        if self.core.now >= self.core.spec.tmax {
            self.core.stop();
        }
        self.finish_turn_into(out);
    }

    /// The job currently occupying `machine`, if any.
    fn job_on(&self, machine: MachineId) -> Option<JobId> {
        self.core
            .jm
            .active_jobs()
            .iter()
            .copied()
            .find(|j| self.core.jm.state(*j).ok().and_then(|s| s.machine()) == Some(machine))
    }

    /// Number of jobs still live (running, suspending, or queued).
    /// Executors use this to detect natural termination under faults.
    pub fn active_job_count(&self) -> usize {
        self.core.jm.active_len()
    }

    fn on_epoch_done(&mut self, job: JobId) {
        let epoch = self.core.jm.record_epoch(job).expect("epoch on running job");
        self.core.total_epochs += 1;
        let value = self.core.profile_of(job).value_at(epoch);
        let secondary = self.core.profile_of(job).secondary_at(epoch);
        let now = self.core.now;
        self.core.db.record_stat(job, epoch, now, value);
        if let Some(sv) = secondary {
            self.core.db.record_secondary(job, epoch, now, sv);
        }

        // Experiment-level goal check happens before policy up-calls: the
        // run is over the moment any job exhibits the target — unless
        // dynamic-target mode keeps raising the bar (§9).
        if self.core.spec.stop_on_target || self.core.spec.dynamic_target_increment.is_some() {
            let curve = self.core.db.curve_ref(job).expect("stat just recorded");
            if self.core.goal_reached(curve, value) {
                self.core.milestones.push(TargetMilestone {
                    target: self.core.current_target,
                    time: now,
                    job,
                });
                self.core.record(SchedulerEvent::TargetReached {
                    job,
                    target: self.core.current_target,
                    time: now,
                });
                if self.core.time_to_target.is_none() {
                    self.core.time_to_target = Some(now);
                    self.core.winner = Some(job);
                }
                match self.core.spec.dynamic_target_increment {
                    Some(increment) => {
                        self.core.current_target += increment;
                        if self.core.current_target > 1.0 {
                            self.core.stop();
                            return;
                        }
                    }
                    None => {
                        self.core.stop();
                        return;
                    }
                }
            }
        }

        let event = JobEvent { job, epoch, value, now };
        self.policy.application_stat(&event, &mut self.core);

        let machine = self
            .core
            .jm
            .state(job)
            .expect("job registered")
            .machine()
            .expect("running job has a machine");

        if epoch >= self.core.profile_of(job).max_epochs() {
            // Ran to its cap.
            self.core.jm.complete_job(job).expect("running job completes");
            self.core.rm.release_machine(machine).expect("held machine releases");
            self.core.record(SchedulerEvent::Completed { job, machine, time: now });
        } else {
            let decision = self.policy.on_iteration_finish(&event, &mut self.core);
            // Modeled prediction cost of the decision (zero for policies
            // without a fit-cost model): the machine sits occupied while
            // the scheduler thinks, so the overhead delays whatever the
            // decision issues next.
            let overhead = self.policy.take_decision_overhead();
            match decision {
                JobDecision::Continue => {
                    self.core.issue_epoch(job, machine, overhead);
                }
                JobDecision::Suspend => {
                    // Injected suspend failure: the snapshot capture dies
                    // mid-flight, so no snapshot is stored and the job
                    // falls back to its previous one (or scratch).
                    let suspend_fails = self.core.suspend_fail_prob > 0.0 && {
                        self.core.fault_rng_draws += 1;
                        self.core.fault_rng.gen_range(0.0..1.0) < self.core.suspend_fail_prob
                    };
                    if suspend_fails {
                        self.core.stats.suspend_failures += 1;
                        self.core.interrupt(job, machine, true);
                    } else {
                        self.core.jm.begin_suspend(job).expect("running job suspends");
                        self.core.rng_draws += 1;
                        let mut cost =
                            self.core.workload.suspend.sample_suspend(&mut self.core.rng);
                        cost.latency += overhead;
                        self.core.charge(job, cost.latency);
                        self.core.db.record_suspend(SuspendEvent { job, requested_at: now, cost });
                        // Serialize the job's real training state (§5.1),
                        // padded toward the sampled framework/CRIU size (the
                        // sampled size is what telemetry reports; physical
                        // padding is capped so simulating multi-GB snapshot
                        // models does not exhaust host memory). Resume
                        // verifies the round trip.
                        const PAD_CAP: u64 = 4 * 1024 * 1024;
                        let snapshot = JobSnapshot::capture(
                            job,
                            epoch,
                            self.core.db.curve_ref(job).expect("stat recorded"),
                        );
                        let mut bytes = snapshot.encode(cost.snapshot_bytes.min(PAD_CAP) as usize);
                        // Injected corruption: flip the magic so the damage
                        // stays latent until a resume tries to decode it.
                        let corrupt = self.core.snapshot_corrupt_prob > 0.0 && {
                            self.core.fault_rng_draws += 1;
                            self.core.fault_rng.gen_range(0.0..1.0)
                                < self.core.snapshot_corrupt_prob
                        };
                        if corrupt {
                            bytes[0] ^= 0xFF;
                        }
                        self.core.db.store_snapshot(job, bytes);
                        self.core.snapshot_epochs.insert(job, epoch);
                        let token = self.core.issue_token(job);
                        self.core.pending.push(Command::Suspend {
                            job,
                            machine,
                            latency: cost.latency,
                            token,
                        });
                    }
                }
                JobDecision::Terminate => {
                    let held = self.core.jm.terminate_job(job).expect("running job terminates");
                    let m = held.expect("running job holds a machine");
                    self.core.rm.release_machine(m).expect("held machine releases");
                    self.core.record(SchedulerEvent::Terminated { job, machine: m, time: now });
                }
            }
        }
        // Machines may have freed; let the policy allocate.
        self.policy.allocate_jobs(&mut self.core);
    }

    fn on_suspend_done(&mut self, job: JobId) {
        let machine = self.core.jm.finish_suspend(job).expect("suspending job finishes");
        self.core.rm.release_machine(machine).expect("held machine releases");
        self.core.record(SchedulerEvent::Suspended { job, machine, time: self.core.now });
        self.policy.allocate_jobs(&mut self.core);
    }

    /// True once the experiment has stopped (goal reached or `Tmax`).
    pub fn stopped(&self) -> bool {
        self.core.stopped
    }

    /// Input records journaled so far (the crash-position coordinate of
    /// the kill-anywhere harness); zero when journaling is disabled.
    pub fn journaled_inputs(&self) -> u64 {
        self.core.journal.inputs_appended()
    }

    /// The engine's journal handle (cheap clone; disabled handles are
    /// inert). Executors keep one to recover after a simulated crash.
    pub fn journal(&self) -> Journal {
        self.core.journal.clone()
    }

    /// Seals the journal as *incomplete*: the run is being interrupted on
    /// purpose (the live executor's SIGTERM drain). Idempotent;
    /// [`into_result`](Self::into_result) re-seals completed runs.
    pub fn seal_journal(&mut self) {
        self.core.journal.seal(self.core.now, false);
    }

    /// Finalizes the run into a result at time `end_time`.
    pub fn into_result(self, end_time: SimTime) -> ExperimentResult {
        let mut core = self.core;
        core.journal.seal(end_time, true);
        core.stats.dead_machines_at_end = core.rm.dead_count() as u64;
        let outcomes = core
            .workload
            .jobs
            .iter()
            .map(|j| {
                let state = core.jm.state(j.job).expect("job registered");
                let end = match state {
                    JobState::Completed => JobEnd::Completed,
                    JobState::Terminated => JobEnd::Terminated,
                    JobState::Failed => JobEnd::Failed,
                    _ => JobEnd::Unfinished,
                };
                JobOutcome {
                    job: j.job,
                    epochs: core.jm.epochs_done(j.job).unwrap_or(0),
                    busy_time: SimTime::from_secs(core.busy_time[j.job.raw() as usize]),
                    best_value: core.db.curve_ref(j.job).and_then(|c| c.best()).unwrap_or(f64::NAN),
                    end,
                }
            })
            .collect();
        ExperimentResult {
            policy: self.policy.name().to_string(),
            fit_cache: self.policy.fit_cache_snapshot(),
            time_to_target: core.time_to_target,
            winner: core.winner,
            end_time,
            outcomes,
            suspend_events: core.db.suspend_events().to_vec(),
            milestones: core.milestones,
            events: core.log,
            total_epochs: core.total_epochs,
            faults: core.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DefaultPolicy;
    use hyperdrive_workload::CifarWorkload;

    fn tiny_workload(n: usize, epochs: u32) -> ExperimentWorkload {
        let w = CifarWorkload::new().with_max_epochs(epochs);
        ExperimentWorkload::from_workload(&w, n, 7)
    }

    #[test]
    fn start_fills_machines() {
        let ew = tiny_workload(5, 4);
        let mut policy = DefaultPolicy::new();
        let mut engine = ExperimentEngine::new(&mut policy, &ew, ExperimentSpec::new(3));
        let cmds = engine.start();
        let runs = cmds.iter().filter(|c| matches!(c, Command::RunEpoch { .. })).count();
        assert_eq!(runs, 3, "3 machines -> 3 initial epochs");
    }

    #[test]
    fn epoch_events_chain_until_completion() {
        let ew = tiny_workload(1, 3);
        let mut policy = DefaultPolicy::new();
        let spec = ExperimentSpec::new(1).with_stop_on_target(false);
        let mut engine = ExperimentEngine::new(&mut policy, &ew, spec);
        let mut cmds = engine.start();
        let mut now = SimTime::ZERO;
        let mut epochs_seen = 0;
        while let Some(Command::RunEpoch { job, duration, token, .. }) = cmds.first().copied() {
            now += duration;
            cmds = engine.handle(EngineEvent::EpochDone { job, token }, now);
            epochs_seen += 1;
            if epochs_seen > 10 {
                panic!("runaway");
            }
        }
        assert_eq!(epochs_seen, 3);
        let result = engine.into_result(now);
        assert_eq!(result.outcomes[0].end, JobEnd::Completed);
        assert_eq!(result.outcomes[0].epochs, 3);
        assert_eq!(result.total_epochs, 3);
        assert!(result.outcomes[0].busy_time > SimTime::ZERO);
    }

    #[test]
    fn tmax_stops_the_run() {
        let ew = tiny_workload(2, 100);
        let mut policy = DefaultPolicy::new();
        let spec =
            ExperimentSpec::new(1).with_tmax(SimTime::from_secs(1.0)).with_stop_on_target(false);
        let mut engine = ExperimentEngine::new(&mut policy, &ew, spec);
        let cmds = engine.start();
        let Command::RunEpoch { job, duration, token, .. } = cmds[0] else {
            panic!("expected RunEpoch");
        };
        let cmds = engine.handle(EngineEvent::EpochDone { job, token }, duration);
        assert!(cmds.contains(&Command::Stop), "past Tmax the engine stops");
        assert!(engine.stopped());
    }

    #[test]
    fn target_stops_the_run_and_records_winner() {
        // Force a trivially reachable target.
        let ew = tiny_workload(2, 50).with_target(0.0);
        let mut policy = DefaultPolicy::new();
        let mut engine = ExperimentEngine::new(&mut policy, &ew, ExperimentSpec::new(2));
        let cmds = engine.start();
        let Command::RunEpoch { job, duration, token, .. } = cmds[0] else {
            panic!("expected RunEpoch");
        };
        let cmds = engine.handle(EngineEvent::EpochDone { job, token }, duration);
        assert!(cmds.contains(&Command::Stop));
        let result = engine.into_result(duration);
        assert!(result.reached_target());
        assert_eq!(result.winner, Some(job));
    }

    /// Scheduling decisions stay `Continue`; the policy only records the
    /// prefetch hints the engine delivers.
    #[derive(Default)]
    struct HintRecorder {
        boundary: Option<u32>,
        hints: Vec<(JobId, u32, SimTime, f64, usize)>,
    }
    impl SchedulingPolicy for HintRecorder {
        fn name(&self) -> &str {
            "hint-recorder"
        }
        fn prefetch_boundary(&self, _default: u32) -> Option<u32> {
            self.boundary
        }
        fn prefetch_hint(&mut self, hint: &PrefetchHint, curve: &LearningCurve) {
            self.hints.push((hint.job, hint.epoch, hint.completion_time, hint.value, curve.len()));
        }
    }

    #[test]
    fn prefetch_hints_fire_at_boundary_epochs_before_they_complete() {
        let ew = tiny_workload(1, 6);
        let mut policy = HintRecorder { boundary: Some(2), ..Default::default() };
        let spec = ExperimentSpec::new(1).with_stop_on_target(false);
        let mut engine = ExperimentEngine::new(&mut policy, &ew, spec);
        let mut cmds = engine.start();
        let mut now = SimTime::ZERO;
        let mut issued = Vec::new();
        while let Some(Command::RunEpoch { job, epoch, duration, token, .. }) =
            cmds.first().copied()
        {
            issued.push((epoch, now + duration));
            now += duration;
            cmds = engine.handle(EngineEvent::EpochDone { job, token }, now);
        }
        drop(engine);
        // Epochs 2 and 4 hit the boundary; 6 == max_epochs completes the
        // job and never reaches a decision, so it must not be hinted.
        assert_eq!(issued.iter().map(|&(e, _)| e).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5, 6]);
        let epochs: Vec<u32> = policy.hints.iter().map(|&(_, e, ..)| e).collect();
        assert_eq!(epochs, vec![2, 4]);
        for &(job, epoch, completion, value, curve_len) in &policy.hints {
            // The hint predicts exactly what the executor will report: the
            // profile value at that epoch, at the scheduled finish time.
            let (_, scheduled) = issued[epoch as usize - 1];
            assert_eq!(completion, scheduled);
            assert_eq!(value, ew.profile(job).value_at(epoch));
            // Delivered while the epoch is in flight: the curve holds only
            // the epochs observed so far.
            assert_eq!(curve_len, epoch as usize - 1);
        }
    }

    #[test]
    fn no_prefetch_boundary_means_no_hints() {
        let ew = tiny_workload(2, 6);
        let mut policy = HintRecorder::default();
        let spec = ExperimentSpec::new(1).with_stop_on_target(false);
        let mut engine = ExperimentEngine::new(&mut policy, &ew, spec);
        let mut cmds = engine.start();
        let mut now = SimTime::ZERO;
        while let Some(Command::RunEpoch { job, duration, token, .. }) = cmds.first().copied() {
            now += duration;
            cmds = engine.handle(EngineEvent::EpochDone { job, token }, now);
        }
        drop(engine);
        assert!(policy.hints.is_empty());
    }

    #[test]
    fn terminate_decision_frees_machine_for_next_job() {
        struct KillFirst;
        impl SchedulingPolicy for KillFirst {
            fn name(&self) -> &str {
                "kill-first"
            }
            fn on_iteration_finish(
                &mut self,
                _event: &JobEvent,
                _ctx: &mut dyn SchedulerContext,
            ) -> JobDecision {
                JobDecision::Terminate
            }
        }
        let ew = tiny_workload(3, 10);
        let mut policy = KillFirst;
        let spec = ExperimentSpec::new(1).with_stop_on_target(false);
        let mut engine = ExperimentEngine::new(&mut policy, &ew, spec);
        let cmds = engine.start();
        let Command::RunEpoch { job, duration, token, .. } = cmds[0] else {
            panic!("expected RunEpoch");
        };
        let cmds = engine.handle(EngineEvent::EpochDone { job, token }, duration);
        // The killed job's machine immediately hosts the next idle job.
        assert!(matches!(cmds[0], Command::RunEpoch { job: j, .. } if j != job));
    }

    #[test]
    fn suspend_decision_issues_suspend_then_requeues() {
        struct SuspendAlways;
        impl SchedulingPolicy for SuspendAlways {
            fn name(&self) -> &str {
                "suspend-always"
            }
            fn on_iteration_finish(
                &mut self,
                _event: &JobEvent,
                _ctx: &mut dyn SchedulerContext,
            ) -> JobDecision {
                JobDecision::Suspend
            }
        }
        let ew = tiny_workload(2, 10);
        let mut policy = SuspendAlways;
        let spec = ExperimentSpec::new(1).with_stop_on_target(false);
        let mut engine = ExperimentEngine::new(&mut policy, &ew, spec);
        let cmds = engine.start();
        let Command::RunEpoch { job: job0, duration, token, .. } = cmds[0] else {
            panic!("expected RunEpoch");
        };
        let mut now = duration;
        let cmds = engine.handle(EngineEvent::EpochDone { job: job0, token }, now);
        let Command::Suspend { job, latency, token, .. } = cmds[0] else {
            panic!("expected Suspend, got {cmds:?}");
        };
        assert_eq!(job, job0);
        now += latency;
        let cmds = engine.handle(EngineEvent::SuspendDone { job: job0, token }, now);
        // Machine freed; the *other* job (FIFO) starts next.
        let Command::RunEpoch { job: next, .. } = cmds[0] else {
            panic!("expected RunEpoch, got {cmds:?}");
        };
        assert_ne!(next, job0, "round-robin: suspended job goes to the back");
        let result = engine.into_result(now);
        assert_eq!(result.suspend_events.len(), 1);
        assert!(result.suspend_events[0].cost.latency > SimTime::ZERO);
    }

    #[test]
    fn dynamic_target_records_milestones_and_keeps_running() {
        // Every job exceeds a 0.01 target immediately; with a large
        // increment the target climbs past 1.0 after a few milestones.
        let ew = tiny_workload(2, 30).with_target(0.01);
        let mut policy = DefaultPolicy::new();
        let spec = ExperimentSpec::new(1).with_dynamic_target(0.02);
        let mut engine = ExperimentEngine::new(&mut policy, &ew, spec);
        let mut cmds = engine.start();
        let mut now = SimTime::ZERO;
        let mut guard = 0;
        while !cmds.iter().any(|c| matches!(c, Command::Stop)) {
            let Some(Command::RunEpoch { job, duration, token, .. }) = cmds.first().copied() else {
                break;
            };
            now += duration;
            cmds = engine.handle(EngineEvent::EpochDone { job, token }, now);
            guard += 1;
            assert!(guard < 500, "runaway dynamic-target loop");
        }
        let result = engine.into_result(now);
        assert!(result.milestones.len() >= 2, "multiple targets reached");
        assert!(result.milestones[0].target < result.milestones[1].target);
        assert!(
            result.milestones.windows(2).all(|w| w[0].time <= w[1].time),
            "milestones in time order"
        );
        assert_eq!(
            result.time_to_target,
            Some(result.milestones[0].time),
            "time-to-target is the first milestone"
        );
    }

    #[test]
    fn plain_stop_records_single_milestone() {
        let ew = tiny_workload(2, 30).with_target(0.0);
        let mut policy = DefaultPolicy::new();
        let mut engine = ExperimentEngine::new(&mut policy, &ew, ExperimentSpec::new(1));
        let cmds = engine.start();
        let Command::RunEpoch { job, duration, token, .. } = cmds[0] else {
            panic!("expected RunEpoch");
        };
        engine.handle(EngineEvent::EpochDone { job, token }, duration);
        let result = engine.into_result(duration);
        assert_eq!(result.milestones.len(), 1);
        assert!(result.reached_target());
    }

    #[test]
    fn events_after_stop_are_ignored() {
        let ew = tiny_workload(1, 5).with_target(0.0);
        let mut policy = DefaultPolicy::new();
        let mut engine = ExperimentEngine::new(&mut policy, &ew, ExperimentSpec::new(1));
        let cmds = engine.start();
        let Command::RunEpoch { job, duration, token, .. } = cmds[0] else {
            panic!("expected RunEpoch");
        };
        engine.handle(EngineEvent::EpochDone { job, token }, duration);
        assert!(engine.stopped());
        let cmds = engine.handle(EngineEvent::EpochDone { job, token }, duration);
        assert!(cmds.is_empty());
    }

    #[test]
    fn stale_tokens_are_dropped() {
        let ew = tiny_workload(2, 10);
        let mut policy = DefaultPolicy::new();
        let spec = ExperimentSpec::new(2).with_stop_on_target(false);
        let mut engine = ExperimentEngine::new(&mut policy, &ew, spec);
        let cmds = engine.start();
        let Command::RunEpoch { job, machine, duration, token, .. } = cmds[0] else {
            panic!("expected RunEpoch");
        };
        // A stall invalidates the in-flight token; the late reply from the
        // wedged agent must not be double-counted.
        let followups = engine.inject_agent_stall(machine, SimTime::from_secs(1.0));
        assert!(
            followups.iter().any(|c| matches!(c, Command::RunEpoch { job: j, .. } if *j == job)),
            "interrupted job reschedules, got {followups:?}"
        );
        let stale = engine.handle(EngineEvent::EpochDone { job, token }, duration);
        assert!(stale.is_empty(), "stale completion is dropped");
        let result = engine.into_result(duration);
        assert_eq!(result.faults.agent_stalls, 1);
        assert_eq!(result.faults.interruptions, 1);
        assert_eq!(result.faults.lost_epochs, 0, "no epoch had completed, so none were lost");
    }

    #[test]
    fn machine_crash_interrupts_and_recovery_restores_capacity() {
        let ew = tiny_workload(1, 10);
        let mut policy = DefaultPolicy::new();
        let spec = ExperimentSpec::new(1).with_stop_on_target(false);
        let mut engine = ExperimentEngine::new(&mut policy, &ew, spec);
        let cmds = engine.start();
        let Command::RunEpoch { job, machine, .. } = cmds[0] else {
            panic!("expected RunEpoch");
        };
        // Crash the only machine: the job is interrupted but nothing can
        // restart it until the machine recovers.
        let cmds = engine.inject_machine_crash(machine, SimTime::from_secs(5.0));
        assert!(cmds.is_empty(), "no capacity left, got {cmds:?}");
        assert_eq!(engine.active_job_count(), 1, "job waits in the idle queue");
        // Double crash is a no-op.
        assert!(engine.inject_machine_crash(machine, SimTime::from_secs(6.0)).is_empty());
        // Recovery restarts the job from scratch (no snapshot existed).
        let cmds = engine.inject_machine_recovery(machine, SimTime::from_secs(60.0));
        assert!(
            cmds.iter()
                .any(|c| matches!(c, Command::RunEpoch { job: j, epoch: 1, .. } if *j == job)),
            "job restarts at epoch 1, got {cmds:?}"
        );
        let result = engine.into_result(SimTime::from_secs(60.0));
        assert_eq!(result.faults.machine_crashes, 1);
        assert_eq!(result.faults.machine_recoveries, 1);
        assert_eq!(result.faults.dead_machines_at_end, 0);
    }

    #[test]
    fn retry_exhaustion_fails_the_job() {
        let ew = tiny_workload(1, 10);
        let mut policy = DefaultPolicy::new();
        let spec = ExperimentSpec::new(1).with_stop_on_target(false);
        let mut plan = FaultPlan::none();
        plan.retry = RetryPolicy { max_retries: 1, ..RetryPolicy::default() };
        let mut engine = ExperimentEngine::with_fault_injection(&mut policy, &ew, spec, &plan);
        let cmds = engine.start();
        let Command::RunEpoch { machine, .. } = cmds[0] else {
            panic!("expected RunEpoch");
        };
        // First stall: retry 1 of 1, job reschedules.
        let cmds = engine.inject_agent_stall(machine, SimTime::from_secs(1.0));
        assert!(cmds.iter().any(|c| matches!(c, Command::RunEpoch { .. })));
        // Second stall: budget exhausted, job fails, nothing reschedules.
        let cmds = engine.inject_agent_stall(machine, SimTime::from_secs(2.0));
        assert!(
            !cmds.iter().any(|c| matches!(c, Command::RunEpoch { .. })),
            "failed job must not reschedule, got {cmds:?}"
        );
        assert_eq!(engine.active_job_count(), 0);
        let result = engine.into_result(SimTime::from_secs(2.0));
        assert_eq!(result.outcomes[0].end, JobEnd::Failed);
        assert_eq!(result.failed_jobs(), 1);
        assert_eq!(result.faults.failed_jobs, 1);
    }

    #[test]
    fn corrupted_snapshot_restarts_from_scratch() {
        struct SuspendOnce {
            suspended: bool,
        }
        impl SchedulingPolicy for SuspendOnce {
            fn name(&self) -> &str {
                "suspend-once"
            }
            fn on_iteration_finish(
                &mut self,
                _event: &JobEvent,
                _ctx: &mut dyn SchedulerContext,
            ) -> JobDecision {
                if self.suspended {
                    JobDecision::Continue
                } else {
                    self.suspended = true;
                    JobDecision::Suspend
                }
            }
        }
        let ew = tiny_workload(1, 5);
        let mut policy = SuspendOnce { suspended: false };
        let spec = ExperimentSpec::new(1).with_stop_on_target(false);
        let mut plan = FaultPlan::none();
        plan.snapshot_corrupt_prob = 1.0; // every stored snapshot is damaged
        let mut engine = ExperimentEngine::with_fault_injection(&mut policy, &ew, spec, &plan);
        let mut cmds = engine.start();
        let mut now = SimTime::ZERO;
        let mut guard = 0;
        while let Some(cmd) = cmds.first().copied() {
            let event = match cmd {
                Command::RunEpoch { job, duration, token, .. } => {
                    now += duration;
                    EngineEvent::EpochDone { job, token }
                }
                Command::Suspend { job, latency, token, .. } => {
                    now += latency;
                    EngineEvent::SuspendDone { job, token }
                }
                Command::Stop => break,
            };
            cmds = engine.handle(event, now);
            guard += 1;
            assert!(guard < 50, "runaway");
        }
        let result = engine.into_result(now);
        assert_eq!(result.faults.snapshot_corruptions, 1);
        assert_eq!(result.faults.lost_epochs, 1, "the pre-suspend epoch re-ran");
        assert_eq!(result.outcomes[0].end, JobEnd::Completed, "job still finishes");
        assert_eq!(result.outcomes[0].epochs, 5);
        assert_eq!(
            result.total_epochs,
            u64::from(result.outcomes[0].epochs) + result.faults.lost_epochs,
            "lost-epoch accounting holds"
        );
        assert!(
            result
                .events
                .events()
                .iter()
                .any(|e| matches!(e, SchedulerEvent::SnapshotCorrupted { .. })),
            "corruption is logged"
        );
    }

    #[test]
    fn suspend_failure_rolls_back_without_snapshot() {
        struct SuspendAlways;
        impl SchedulingPolicy for SuspendAlways {
            fn name(&self) -> &str {
                "suspend-always"
            }
            fn on_iteration_finish(
                &mut self,
                _event: &JobEvent,
                _ctx: &mut dyn SchedulerContext,
            ) -> JobDecision {
                JobDecision::Suspend
            }
        }
        let ew = tiny_workload(1, 5);
        let mut policy = SuspendAlways;
        let spec = ExperimentSpec::new(1).with_stop_on_target(false);
        let mut plan = FaultPlan::none();
        plan.suspend_fail_prob = 1.0; // every suspend dies mid-capture
        plan.retry = RetryPolicy { max_retries: 0, ..RetryPolicy::default() };
        let mut engine = ExperimentEngine::with_fault_injection(&mut policy, &ew, spec, &plan);
        let cmds = engine.start();
        let Command::RunEpoch { job, duration, token, .. } = cmds[0] else {
            panic!("expected RunEpoch");
        };
        let cmds = engine.handle(EngineEvent::EpochDone { job, token }, duration);
        assert!(
            !cmds.iter().any(|c| matches!(c, Command::Suspend { .. })),
            "failed suspend issues no Suspend command, got {cmds:?}"
        );
        let result = engine.into_result(duration);
        assert_eq!(result.faults.suspend_failures, 1);
        assert_eq!(result.outcomes[0].end, JobEnd::Failed, "zero retries allowed");
        assert_eq!(result.faults.lost_epochs, 1, "the completed epoch rolled back");
    }
}
