//! Experiment specification and results.
//!
//! The Experiment Runner (§4.2 ➀) specifies the policy, the hyperparameter
//! generation technique, the model to run, and the total number of
//! machines. Here that splits into an [`ExperimentWorkload`] (the fixed set
//! of configurations with their hidden ground-truth profiles — the paper
//! fixes 100 configurations from a seeded random generator so every policy
//! sees the same set) and an [`ExperimentSpec`] (cluster size, `Tmax`,
//! stopping behaviour). Executors produce an [`ExperimentResult`].

use hyperdrive_types::{ConfigId, Configuration, DomainKnowledge, JobId, Result, SimTime};
use hyperdrive_workload::{JobProfile, SuspendModel, TraceSet, Workload};

use crate::appstat::SuspendEvent;
use crate::events::EventLog;
use crate::generator::{HyperparameterGenerator, RandomGenerator};

/// One job of an experiment: a configuration plus its hidden ground truth.
#[derive(Debug, Clone)]
pub struct ExperimentJob {
    /// Job identifier (position in the schedule order).
    pub job: JobId,
    /// Identifier assigned by the hyperparameter generator.
    pub config_id: ConfigId,
    /// The hyperparameter values.
    pub config: Configuration,
    /// Ground-truth execution profile (revealed incrementally by
    /// executors; never visible to policies).
    pub profile: JobProfile,
}

/// A fixed, replayable set of configurations for one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentWorkload {
    /// Workload name (for reports).
    pub name: String,
    /// Model-owner domain knowledge.
    pub domain: DomainKnowledge,
    /// Evaluation boundary `b`.
    pub eval_boundary: u32,
    /// Epoch cap for every job.
    pub max_epochs: u32,
    /// Normalized target performance.
    pub target: f64,
    /// Suspend/resume cost model.
    pub suspend: SuspendModel,
    /// The jobs in schedule order.
    pub jobs: Vec<ExperimentJob>,
}

impl ExperimentWorkload {
    /// Builds an experiment from `n` random configurations of a workload
    /// (the paper's setup: same random generator, same seed across
    /// policies).
    pub fn from_workload(workload: &dyn Workload, n: usize, seed: u64) -> Self {
        Self::from_workload_with_noise(workload, n, seed, seed)
    }

    /// Like [`ExperimentWorkload::from_workload`], but decouples the
    /// configuration-sampling seed from the training-noise seed. The
    /// paper's repeated experiments (§6.1) keep the *same* hyperparameter
    /// set ("the same random search Hyperparameter Generator with the same
    /// initial random seed") while run-to-run training non-determinism
    /// varies — exactly `config_seed` fixed, `noise_seed` varying.
    pub fn from_workload_with_noise(
        workload: &dyn Workload,
        n: usize,
        config_seed: u64,
        noise_seed: u64,
    ) -> Self {
        let mut generator = RandomGenerator::new(workload.space().clone(), config_seed);
        Self::from_generator(workload, &mut generator, n, noise_seed)
            .expect("random generator never exhausts")
    }

    /// Builds an experiment by drawing `n` configurations from an
    /// arbitrary generator.
    ///
    /// # Errors
    ///
    /// Propagates generator exhaustion.
    pub fn from_generator(
        workload: &dyn Workload,
        generator: &mut dyn HyperparameterGenerator,
        n: usize,
        seed: u64,
    ) -> Result<Self> {
        let mut jobs = Vec::with_capacity(n);
        for i in 0..n {
            let (config_id, config) = generator.create_job()?;
            let profile = workload.profile(&config, seed.wrapping_add(i as u64));
            jobs.push(ExperimentJob { job: JobId::new(i as u64), config_id, config, profile });
        }
        Ok(ExperimentWorkload {
            name: workload.name().to_string(),
            domain: workload.domain_knowledge(),
            eval_boundary: workload.eval_boundary(),
            max_epochs: workload.max_epochs(),
            target: workload.default_target(),
            suspend: workload.suspend_model(),
            jobs,
        })
    }

    /// Builds an experiment by replaying recorded traces (the §7
    /// trace-driven simulator input).
    pub fn from_traces(
        traces: &TraceSet,
        domain: DomainKnowledge,
        eval_boundary: u32,
        target: f64,
        suspend: SuspendModel,
    ) -> Self {
        let max_epochs = traces.traces.iter().map(|t| t.values.len() as u32).max().unwrap_or(0);
        let jobs = traces
            .traces
            .iter()
            .enumerate()
            .map(|(i, t)| ExperimentJob {
                job: JobId::new(i as u64),
                config_id: ConfigId::new(u64::from(t.config_index)),
                config: Configuration::new(),
                profile: t.to_profile(),
            })
            .collect();
        ExperimentWorkload {
            name: traces.workload_name.clone(),
            domain,
            eval_boundary,
            max_epochs,
            target,
            suspend,
            jobs,
        }
    }

    /// Returns a copy with a different target performance.
    pub fn with_target(mut self, target: f64) -> Self {
        self.target = target;
        self
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the experiment has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Looks up a job's profile.
    ///
    /// # Panics
    ///
    /// Panics if the job id is out of range.
    pub fn profile(&self, job: JobId) -> &JobProfile {
        &self.jobs[job.raw() as usize].profile
    }
}

/// Cluster size, time budget, and stopping behaviour for one run.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentSpec {
    /// Number of machines (slots) `S`.
    pub machines: usize,
    /// The user's maximum experiment time `Tmax`.
    pub tmax: SimTime,
    /// Stop as soon as a job reaches the target (the paper's primary
    /// objective: minimize time-to-target). When false, the experiment
    /// runs until all jobs finish or `Tmax`.
    pub stop_on_target: bool,
    /// §9's dynamic-target mode: instead of stopping at the target, raise
    /// it by this increment each time it is reached (recording a
    /// [`TargetMilestone`]) and keep searching until the target exceeds
    /// 1.0, all jobs finish, or `Tmax`. Overrides `stop_on_target` while
    /// targets remain reachable.
    pub dynamic_target_increment: Option<f64>,
    /// Seed for executor-level randomness (suspend-cost sampling).
    pub seed: u64,
}

impl ExperimentSpec {
    /// A spec with the given machine count, 24h `Tmax`, stop-on-target.
    pub fn new(machines: usize) -> Self {
        ExperimentSpec {
            machines,
            tmax: SimTime::from_hours(24.0),
            stop_on_target: true,
            dynamic_target_increment: None,
            seed: 0,
        }
    }

    /// Sets `Tmax`.
    pub fn with_tmax(mut self, tmax: SimTime) -> Self {
        self.tmax = tmax;
        self
    }

    /// Sets the executor seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets whether the experiment stops at the first job reaching target.
    pub fn with_stop_on_target(mut self, stop: bool) -> Self {
        self.stop_on_target = stop;
        self
    }

    /// Enables §9's dynamic-target mode with the given increment.
    ///
    /// # Panics
    ///
    /// Panics if the increment is not positive and finite.
    pub fn with_dynamic_target(mut self, increment: f64) -> Self {
        assert!(
            increment.is_finite() && increment > 0.0,
            "dynamic-target increment must be positive"
        );
        self.dynamic_target_increment = Some(increment);
        self
    }
}

/// One dynamic-target achievement (§9's "gradually increasing the target
/// once it is reached").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetMilestone {
    /// The target that was reached.
    pub target: f64,
    /// When it was reached.
    pub time: SimTime,
    /// The job that reached it.
    pub job: JobId,
}

/// How a job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEnd {
    /// Ran to its epoch cap.
    Completed,
    /// Terminated early by the policy.
    Terminated,
    /// Still live (running, suspended, or queued) when the experiment
    /// stopped.
    Unfinished,
    /// Interrupted by faults until its retry budget ran out.
    Failed,
}

/// Per-job accounting at experiment end.
#[derive(Debug, Clone, Copy)]
pub struct JobOutcome {
    /// The job.
    pub job: JobId,
    /// Epochs it completed.
    pub epochs: u32,
    /// Machine time it consumed (epochs + suspend/resume latencies).
    pub busy_time: SimTime,
    /// Best performance it reached (NaN if it never reported).
    pub best_value: f64,
    /// How it ended.
    pub end: JobEnd,
}

/// The outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Policy that produced this result.
    pub policy: String,
    /// Time at which some job reached the target, if any.
    pub time_to_target: Option<SimTime>,
    /// The job that reached the target.
    pub winner: Option<JobId>,
    /// Experiment end time.
    pub end_time: SimTime,
    /// Per-job accounting.
    pub outcomes: Vec<JobOutcome>,
    /// Every suspend event with sampled costs.
    pub suspend_events: Vec<SuspendEvent>,
    /// Targets reached in dynamic-target mode, in achievement order. In
    /// plain stop-on-target mode this holds at most the single final
    /// target.
    pub milestones: Vec<TargetMilestone>,
    /// The full scheduler event log (starts, suspends, terminations,
    /// completions, milestones) for Gantt/utilization analysis.
    pub events: EventLog,
    /// Total epochs executed across all jobs. Epochs rolled back by faults
    /// and re-run count every time they executed, so
    /// `total_epochs == Σ outcomes[].epochs + faults.lost_epochs`
    /// (epochs in flight when a fault struck were never recorded and appear
    /// in neither term).
    pub total_epochs: u64,
    /// Fault-injection accounting; all-zero for fault-free runs.
    pub faults: crate::fault::FaultStats,
    /// The policy's curve-fit cache counters at run end
    /// ([`SchedulingPolicy::fit_cache_snapshot`](crate::SchedulingPolicy));
    /// `None` for policies that fit no curves. Diagnostics only — the
    /// counters never feed back into scheduling, so traces stay identical
    /// whatever they read.
    pub fit_cache: Option<crate::policy::FitCacheSnapshot>,
}

impl ExperimentResult {
    /// True if the target was reached within `Tmax`.
    pub fn reached_target(&self) -> bool {
        self.time_to_target.is_some()
    }

    /// Job execution durations in minutes (Fig. 6's metric) for jobs that
    /// ran at all.
    pub fn job_durations_mins(&self) -> Vec<f64> {
        self.outcomes.iter().filter(|o| o.epochs > 0).map(|o| o.busy_time.as_mins()).collect()
    }

    /// Number of jobs the policy terminated early.
    pub fn terminated_early(&self) -> usize {
        self.outcomes.iter().filter(|o| o.end == JobEnd::Terminated).count()
    }

    /// Number of jobs that exhausted their fault-retry budget.
    pub fn failed_jobs(&self) -> usize {
        self.outcomes.iter().filter(|o| o.end == JobEnd::Failed).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperdrive_workload::CifarWorkload;

    #[test]
    fn from_workload_builds_jobs() {
        let w = CifarWorkload::new().with_max_epochs(10);
        let ew = ExperimentWorkload::from_workload(&w, 5, 42);
        assert_eq!(ew.len(), 5);
        assert_eq!(ew.max_epochs, 10);
        assert_eq!(ew.eval_boundary, 10);
        assert_eq!(ew.target, 0.77);
        for (i, j) in ew.jobs.iter().enumerate() {
            assert_eq!(j.job, JobId::new(i as u64));
            assert_eq!(j.profile.max_epochs(), 10);
        }
    }

    #[test]
    fn same_seed_same_configs() {
        let w = CifarWorkload::new().with_max_epochs(5);
        let a = ExperimentWorkload::from_workload(&w, 3, 9);
        let b = ExperimentWorkload::from_workload(&w, 3, 9);
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.config, y.config);
            assert_eq!(x.profile, y.profile);
        }
    }

    #[test]
    fn from_traces_replays() {
        let w = CifarWorkload::new().with_max_epochs(8);
        let traces = TraceSet::generate(&w, 4, 3);
        let ew = ExperimentWorkload::from_traces(
            &traces,
            w.domain_knowledge(),
            10,
            0.77,
            SuspendModel::supervised_snapshot(),
        );
        assert_eq!(ew.len(), 4);
        assert_eq!(ew.max_epochs, 8);
        // Replayed profiles match the original truth.
        let direct = ExperimentWorkload::from_workload(&w, 4, 3);
        for (a, b) in ew.jobs.iter().zip(&direct.jobs) {
            assert_eq!(a.profile.max_epochs(), b.profile.max_epochs());
            let da = a.profile.value_at(5);
            let db = b.profile.value_at(5);
            assert!((da - db).abs() < 1e-5, "{da} vs {db}");
        }
    }

    #[test]
    fn spec_builder_chain() {
        let spec = ExperimentSpec::new(4)
            .with_tmax(SimTime::from_hours(2.0))
            .with_seed(5)
            .with_stop_on_target(false);
        assert_eq!(spec.machines, 4);
        assert_eq!(spec.tmax, SimTime::from_hours(2.0));
        assert_eq!(spec.seed, 5);
        assert!(!spec.stop_on_target);
    }

    #[test]
    fn result_helpers() {
        let result = ExperimentResult {
            policy: "test".into(),
            time_to_target: Some(SimTime::from_mins(30.0)),
            winner: Some(JobId::new(2)),
            end_time: SimTime::from_mins(30.0),
            outcomes: vec![
                JobOutcome {
                    job: JobId::new(0),
                    epochs: 0,
                    busy_time: SimTime::ZERO,
                    best_value: f64::NAN,
                    end: JobEnd::Unfinished,
                },
                JobOutcome {
                    job: JobId::new(1),
                    epochs: 10,
                    busy_time: SimTime::from_mins(10.0),
                    best_value: 0.1,
                    end: JobEnd::Terminated,
                },
            ],
            suspend_events: vec![],
            milestones: vec![],
            events: EventLog::new(),
            total_epochs: 10,
            faults: crate::fault::FaultStats::default(),
            fit_cache: None,
        };
        assert!(result.reached_target());
        assert_eq!(result.job_durations_mins(), vec![10.0]);
        assert_eq!(result.terminated_early(), 1);
    }
}
