//! The Scheduling Algorithm Policy (SAP) interface.
//!
//! §4.2: "A user-provided Scheduling Algorithm Policy is written in an
//! imperative style using the following three HyperDrive up-call events:
//! `AllocateJobs()`, `ApplicationStat(jobEvent)`,
//! `OnIterationFinish(jobEvent)`." The up-calls receive a
//! [`SchedulerContext`] exposing the Job Manager / Resource Manager /
//! AppStat DB state a policy may consult plus the actions it may take
//! (starting idle jobs, labelling priorities). `OnIterationFinish` returns
//! a [`JobDecision`] — continue, suspend, or terminate — for the job that
//! finished the iteration.
//!
//! The [`DefaultPolicy`] here is the paper's Default SAP: "simply greedily
//! allocates idle jobs to idle machines" and ignores statistics.

use hyperdrive_types::{DomainKnowledge, JobId, LearningCurve, SimTime};

/// An application statistic delivered to a policy: one job finished one
/// training iteration (epoch) with the given measured performance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobEvent {
    /// The reporting job.
    pub job: JobId,
    /// 1-based epoch the job just finished.
    pub epoch: u32,
    /// Normalized performance measured at this epoch.
    pub value: f64,
    /// Experiment time of the report.
    pub now: SimTime,
}

/// Advance notice that a job will complete an epoch visible at the next
/// evaluation boundary, delivered to
/// [`SchedulingPolicy::prefetch_hint`] the moment the epoch command is
/// *issued* — before the epoch runs — so a policy can speculatively
/// start the curve fit it will want at the boundary.
///
/// `completion_time` and `value` are the engine's predictions of the
/// observation the boundary will see (exact in simulation and replay;
/// best-effort live — a wrong prediction produces a fingerprint mismatch
/// at the boundary and a demand refit, never a wrong result). `tmax` and
/// `max_epochs` carry the context a hint handler needs for horizon math,
/// since no [`SchedulerContext`] is available outside an up-call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchHint {
    /// The job whose epoch was issued.
    pub job: JobId,
    /// The 1-based epoch that will have completed at the boundary.
    pub epoch: u32,
    /// Predicted experiment time of the epoch's completion.
    pub completion_time: SimTime,
    /// Predicted performance value at `epoch`.
    pub value: f64,
    /// The workload's maximum epochs (see
    /// [`SchedulerContext::max_epochs`]).
    pub max_epochs: u32,
    /// The experiment's `Tmax` (see [`SchedulerContext::tmax`]).
    pub tmax: SimTime,
}

/// A policy's verdict for a job that just finished an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobDecision {
    /// Keep training on the same machine.
    #[default]
    Continue,
    /// Snapshot state and return the job to the idle queue, freeing its
    /// machine.
    Suspend,
    /// Kill the job permanently.
    Terminate,
}

/// The state a policy can observe and the actions it can take during an
/// up-call.
///
/// Implemented by both the discrete-event simulator and the live executor,
/// so the same policy object runs unchanged on either.
pub trait SchedulerContext {
    /// Current experiment time.
    fn now(&self) -> SimTime;

    /// The user's maximum experiment duration `Tmax`.
    fn tmax(&self) -> SimTime;

    /// The target performance `ytarget` (normalized).
    fn target(&self) -> f64;

    /// Total number of slots `S` in the cluster.
    fn total_slots(&self) -> usize;

    /// Number of currently idle slots.
    fn idle_slots(&self) -> usize;

    /// Model-owner domain knowledge for the running workload.
    fn domain(&self) -> &DomainKnowledge;

    /// Maximum epochs any job of this workload trains.
    fn max_epochs(&self) -> u32;

    /// The workload's evaluation boundary `b`.
    fn eval_boundary(&self) -> u32;

    /// Jobs that are not terminated or completed (running, suspending, or
    /// idle), sorted by job id. Borrowed from the context's maintained
    /// index — listing is free; callers that need ownership copy
    /// explicitly with `.to_vec()`.
    fn active_jobs(&self) -> &[JobId];

    /// Jobs currently executing on a machine, sorted by job id. Borrowed
    /// from the context's maintained index, like
    /// [`active_jobs`](Self::active_jobs).
    fn running_jobs(&self) -> &[JobId];

    /// Number of jobs waiting in the idle queue.
    fn idle_job_count(&self) -> usize;

    /// The observed learning curve of a job (`None` before its first
    /// report).
    fn curve(&self, job: JobId) -> Option<LearningCurve>;

    /// The observed curves of all active jobs in one batch, **sorted by
    /// job id**. Batch-fitting policies iterate this instead of issuing
    /// per-job [`curve`](Self::curve) calls; the fixed ordering is part of
    /// the determinism contract (request order must not depend on hash-map
    /// iteration or executor timing).
    fn active_curves(&self) -> Vec<(JobId, LearningCurve)> {
        let mut jobs = self.active_jobs().to_vec();
        // The engine's index is already id-sorted; this is a no-op there
        // but keeps the ordering contract for contexts that are not.
        jobs.sort_unstable();
        jobs.into_iter().filter_map(|j| self.curve(j).map(|c| (j, c))).collect()
    }

    /// The observed secondary-metric history of a job (§9's additional
    /// metrics, e.g. sparsity). `None` for workloads without a secondary
    /// metric. The default returns `None`, so single-metric contexts need
    /// not implement it.
    fn secondary_curve(&self, job: JobId) -> Option<LearningCurve> {
        let _ = job;
        None
    }

    /// Epochs a job has completed.
    fn epochs_done(&self, job: JobId) -> u32;

    /// Best observed performance across all jobs, with its owner.
    fn global_best(&self) -> Option<(JobId, f64)>;

    /// Labels a job with a scheduling priority (the JM's `labelJob`).
    fn label_job(&mut self, job: JobId, priority: f64);

    /// Starts (or resumes) the highest-priority idle job on an idle
    /// machine. Returns the started job, or `None` if no machine or no
    /// idle job is available.
    fn start_next_idle_job(&mut self) -> Option<JobId>;

    /// Requests that the whole experiment stop after the current up-call —
    /// §9's "user-defined global termination criteria through HyperDrive's
    /// SAP API". The default is a no-op for contexts that cannot stop.
    fn request_stop(&mut self) {}
}

/// A scheduling algorithm policy: the three up-calls of §4.2.
pub trait SchedulingPolicy: Send {
    /// Policy name for reports.
    fn name(&self) -> &str;

    /// Up-call on detection of idle resources. The default greedily fills
    /// every idle machine from the idle queue.
    fn allocate_jobs(&mut self, ctx: &mut dyn SchedulerContext) {
        while ctx.idle_slots() > 0 && ctx.start_next_idle_job().is_some() {}
    }

    /// Up-call on receipt of an application statistic. The default ignores
    /// it.
    fn application_stat(&mut self, event: &JobEvent, ctx: &mut dyn SchedulerContext) {
        let _ = (event, ctx);
    }

    /// Up-call when a job finishes a training iteration; decides the job's
    /// fate. The default continues unconditionally.
    fn on_iteration_finish(
        &mut self,
        event: &JobEvent,
        ctx: &mut dyn SchedulerContext,
    ) -> JobDecision {
        let _ = (event, ctx);
        JobDecision::Continue
    }

    /// Drains the *modeled* computation cost of the decisions made since
    /// the last drain. The engine calls this after each
    /// [`on_iteration_finish`](Self::on_iteration_finish) and charges the
    /// returned time to the decided job (delaying its next epoch or its
    /// suspend), so prediction overhead shows up on the virtual clock.
    ///
    /// Implementations must return a *modeled* cost — a deterministic
    /// function of scheduler state, never a wall-clock measurement — or
    /// virtual timelines stop being reproducible. The default reports
    /// zero (decisions are free).
    fn take_decision_overhead(&mut self) -> SimTime {
        SimTime::ZERO
    }

    /// The evaluation boundary (in epochs) at which this policy wants
    /// speculative fit-prefetch hints, or `None` when prefetching is off
    /// (the default). The engine snapshots this once at construction and
    /// then calls [`prefetch_hint`](Self::prefetch_hint) whenever it
    /// issues an epoch `e` with `e % boundary == 0` that will still be
    /// scheduler-visible (`e < max_epochs`). `default_boundary` is the
    /// workload's evaluation boundary, passed in because no
    /// [`SchedulerContext`] exists at construction time; policies that
    /// resolve their boundary from the workload use it as the fallback.
    fn prefetch_boundary(&self, default_boundary: u32) -> Option<u32> {
        let _ = default_boundary;
        None
    }

    /// Advance notice that `hint.job` will complete `hint.epoch` — a
    /// boundary-visible epoch — at `hint.completion_time`, with `curve`
    /// the job's currently observed curve (epochs `1..hint.epoch`).
    /// Policies overlap fitting with event processing by enqueuing the
    /// boundary fit here. Purely speculative: a hint must never change
    /// any decision, only move compute earlier. The default ignores it.
    fn prefetch_hint(&mut self, hint: &PrefetchHint, curve: &LearningCurve) {
        let _ = (hint, curve);
    }

    /// A snapshot of the policy's curve-fit cache counters, filled into
    /// [`ExperimentResult::fit_cache`](crate::ExperimentResult) when the
    /// run finalizes so harnesses can aggregate fit/hit statistics
    /// without reaching into policy internals. Diagnostics only — never
    /// an input to scheduling. The default (`None`) is for policies that
    /// fit no curves.
    fn fit_cache_snapshot(&self) -> Option<FitCacheSnapshot> {
        None
    }
}

/// Point-in-time curve-fit cache counters reported by a policy through
/// [`SchedulingPolicy::fit_cache_snapshot`]. Mirrors the fit-service
/// stats: `fits` executed, per-run (`local`) cache hits, and hits served
/// by the process-wide content-addressed layer. `fits + shared_hits` is
/// invariant between a cold run and a shared-cache replay of it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FitCacheSnapshot {
    /// Fresh ensemble fits executed.
    pub fits: u64,
    /// Requests answered by the per-run `(job, epochs)` cache.
    pub local_hits: u64,
    /// Requests answered by the shared content-addressed cache.
    pub shared_hits: u64,
    /// Fit batches served.
    pub batches: u64,
    /// Lookups issued against the shared content-addressed layer (zero
    /// when none is attached). `shared_hits / shared_lookups` is this
    /// run's dedup rate against fits other runs or co-resident studies
    /// already executed — what the multi-tenant server reports per study.
    pub shared_lookups: u64,
    /// Posteriors this run published to the shared layer.
    pub shared_inserts: u64,
}

impl FitCacheSnapshot {
    /// Fraction of shared-layer lookups answered from the layer (0 when
    /// idle): the cross-run/cross-study dedup rate.
    #[must_use]
    pub fn dedup_rate(&self) -> f64 {
        if self.shared_lookups == 0 {
            0.0
        } else {
            self.shared_hits as f64 / self.shared_lookups as f64
        }
    }
}

/// The paper's Default SAP: greedy allocation, run to completion (§4.2,
/// §6.1 baseline 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultPolicy;

impl DefaultPolicy {
    /// Creates the default policy.
    pub fn new() -> Self {
        DefaultPolicy
    }
}

impl SchedulingPolicy for DefaultPolicy {
    fn name(&self) -> &str {
        "default"
    }
}

pub mod testing {
    //! A scripted [`SchedulerContext`] for unit-testing policies without an
    //! executor. Used by the policy crates' test suites.

    use std::collections::HashMap;

    use super::*;
    use hyperdrive_types::MetricKind;

    /// Minimal in-memory context for policy unit tests. All fields are
    /// public so tests can script arbitrary cluster states.
    #[derive(Debug)]
    #[allow(missing_docs)]
    pub struct MockContext {
        pub now: SimTime,
        pub tmax: SimTime,
        pub target: f64,
        pub total_slots: usize,
        pub idle_slots: usize,
        pub domain: DomainKnowledge,
        pub max_epochs: u32,
        pub eval_boundary: u32,
        pub active: Vec<JobId>,
        pub running: Vec<JobId>,
        pub idle_jobs: Vec<JobId>,
        pub curves: HashMap<JobId, LearningCurve>,
        pub secondary_curves: HashMap<JobId, LearningCurve>,
        pub labels: Vec<(JobId, f64)>,
        pub started: Vec<JobId>,
        pub stop_requested: bool,
    }

    impl MockContext {
        /// Creates a context for a cluster of `slots` machines with
        /// CIFAR-10 domain knowledge and no jobs.
        pub fn new(slots: usize) -> Self {
            MockContext {
                now: SimTime::ZERO,
                tmax: SimTime::from_hours(12.0),
                target: 0.77,
                total_slots: slots,
                idle_slots: slots,
                domain: DomainKnowledge::cifar10(),
                max_epochs: 120,
                eval_boundary: 10,
                active: Vec::new(),
                running: Vec::new(),
                idle_jobs: Vec::new(),
                curves: HashMap::new(),
                secondary_curves: HashMap::new(),
                labels: Vec::new(),
                started: Vec::new(),
                stop_requested: false,
            }
        }

        /// Installs an observed curve for `job` with one value per epoch,
        /// spaced `epoch_secs` apart.
        pub fn push_curve(&mut self, job: JobId, values: &[f64], epoch_secs: f64) {
            let mut c = LearningCurve::new(MetricKind::Accuracy);
            for (i, v) in values.iter().enumerate() {
                c.push(i as u32 + 1, SimTime::from_secs(epoch_secs * (i as f64 + 1.0)), *v);
            }
            self.curves.insert(job, c);
        }
    }

    impl SchedulerContext for MockContext {
        fn now(&self) -> SimTime {
            self.now
        }
        fn tmax(&self) -> SimTime {
            self.tmax
        }
        fn target(&self) -> f64 {
            self.target
        }
        fn total_slots(&self) -> usize {
            self.total_slots
        }
        fn idle_slots(&self) -> usize {
            self.idle_slots
        }
        fn domain(&self) -> &DomainKnowledge {
            &self.domain
        }
        fn max_epochs(&self) -> u32 {
            self.max_epochs
        }
        fn eval_boundary(&self) -> u32 {
            self.eval_boundary
        }
        fn active_jobs(&self) -> &[JobId] {
            &self.active
        }
        fn running_jobs(&self) -> &[JobId] {
            &self.running
        }
        fn idle_job_count(&self) -> usize {
            self.idle_jobs.len()
        }
        fn curve(&self, job: JobId) -> Option<LearningCurve> {
            self.curves.get(&job).cloned()
        }
        fn secondary_curve(&self, job: JobId) -> Option<LearningCurve> {
            self.secondary_curves.get(&job).cloned()
        }
        fn epochs_done(&self, job: JobId) -> u32 {
            self.curves.get(&job).and_then(|c| c.last_epoch()).unwrap_or(0)
        }
        fn global_best(&self) -> Option<(JobId, f64)> {
            self.curves
                .iter()
                .filter_map(|(id, c)| c.best().map(|b| (*id, b)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        }
        fn label_job(&mut self, job: JobId, priority: f64) {
            self.labels.push((job, priority));
        }
        fn start_next_idle_job(&mut self) -> Option<JobId> {
            if self.idle_slots == 0 {
                return None;
            }
            let job = if self.idle_jobs.is_empty() {
                return None;
            } else {
                self.idle_jobs.remove(0)
            };
            self.idle_slots -= 1;
            self.running.push(job);
            self.started.push(job);
            Some(job)
        }
        fn request_stop(&mut self) {
            self.stop_requested = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::MockContext;
    use super::*;

    #[test]
    fn default_policy_fills_all_idle_machines() {
        let mut ctx = MockContext::new(3);
        ctx.idle_jobs = (0..5).map(JobId::new).collect();
        let mut policy = DefaultPolicy::new();
        policy.allocate_jobs(&mut ctx);
        assert_eq!(ctx.started.len(), 3, "one job per idle machine");
        assert_eq!(ctx.idle_slots, 0);
    }

    #[test]
    fn default_policy_stops_when_jobs_run_out() {
        let mut ctx = MockContext::new(4);
        ctx.idle_jobs = vec![JobId::new(0)];
        let mut policy = DefaultPolicy::new();
        policy.allocate_jobs(&mut ctx);
        assert_eq!(ctx.started, vec![JobId::new(0)]);
        assert_eq!(ctx.idle_slots, 3);
    }

    #[test]
    fn default_policy_always_continues() {
        let mut ctx = MockContext::new(1);
        let mut policy = DefaultPolicy::new();
        let event =
            JobEvent { job: JobId::new(0), epoch: 10, value: 0.01, now: SimTime::from_mins(10.0) };
        assert_eq!(policy.on_iteration_finish(&event, &mut ctx), JobDecision::Continue);
    }

    #[test]
    fn decision_default_is_continue() {
        assert_eq!(JobDecision::default(), JobDecision::Continue);
    }
}
