//! The Resource Manager (RM).
//!
//! §4.2: "The Resource Management component is responsible for keeping
//! track of currently allocated and idle resources (e.g., machines, GPUs)"
//! with the API `reserveIdleMachine() → machineId` and
//! `releaseMachine(machineId)`. A slot may be a machine or a GPU; the
//! scheduler does not distinguish.

use hyperdrive_types::{Error, MachineId, Result};

/// Tracks which machines (slots) are idle and which are allocated.
#[derive(Debug, Clone)]
pub struct ResourceManager {
    /// `true` = allocated, indexed by machine id.
    allocated: Vec<bool>,
}

impl ResourceManager {
    /// Creates a manager over `n` machines, all idle.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a cluster needs at least one machine");
        ResourceManager { allocated: vec![false; n] }
    }

    /// Total number of machines.
    pub fn total(&self) -> usize {
        self.allocated.len()
    }

    /// Number of idle machines.
    pub fn idle_count(&self) -> usize {
        self.allocated.iter().filter(|a| !**a).count()
    }

    /// Number of allocated machines.
    pub fn allocated_count(&self) -> usize {
        self.total() - self.idle_count()
    }

    /// Reserves the lowest-numbered idle machine, or `None` if all are
    /// busy. (`reserveIdleMachine` in the paper's API.)
    pub fn reserve_idle_machine(&mut self) -> Option<MachineId> {
        let idx = self.allocated.iter().position(|a| !*a)?;
        self.allocated[idx] = true;
        Some(MachineId::new(idx as u64))
    }

    /// Releases a previously reserved machine. (`releaseMachine`.)
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for ids outside the cluster and
    /// [`Error::InvalidParameter`] when releasing an already-idle machine
    /// (a double release is always a framework bug worth surfacing).
    pub fn release_machine(&mut self, machine: MachineId) -> Result<()> {
        let idx = machine.raw() as usize;
        let slot = self
            .allocated
            .get_mut(idx)
            .ok_or(Error::UnknownMachine(machine.raw()))?;
        if !*slot {
            return Err(Error::InvalidParameter(format!(
                "machine {machine} released while idle"
            )));
        }
        *slot = false;
        Ok(())
    }

    /// True if the machine is currently reserved.
    pub fn is_allocated(&self, machine: MachineId) -> bool {
        self.allocated.get(machine.raw() as usize).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_cycle() {
        let mut rm = ResourceManager::new(2);
        assert_eq!(rm.idle_count(), 2);
        let a = rm.reserve_idle_machine().unwrap();
        let b = rm.reserve_idle_machine().unwrap();
        assert_ne!(a, b);
        assert_eq!(rm.idle_count(), 0);
        assert!(rm.reserve_idle_machine().is_none());
        rm.release_machine(a).unwrap();
        assert_eq!(rm.idle_count(), 1);
        let c = rm.reserve_idle_machine().unwrap();
        assert_eq!(c, a, "lowest-numbered idle machine is reused");
    }

    #[test]
    fn double_release_is_an_error() {
        let mut rm = ResourceManager::new(1);
        let m = rm.reserve_idle_machine().unwrap();
        rm.release_machine(m).unwrap();
        assert!(rm.release_machine(m).is_err());
    }

    #[test]
    fn unknown_machine_is_an_error() {
        let mut rm = ResourceManager::new(1);
        assert!(matches!(
            rm.release_machine(MachineId::new(9)),
            Err(Error::UnknownMachine(9))
        ));
    }

    #[test]
    fn allocation_status_is_tracked() {
        let mut rm = ResourceManager::new(2);
        let m = rm.reserve_idle_machine().unwrap();
        assert!(rm.is_allocated(m));
        rm.release_machine(m).unwrap();
        assert!(!rm.is_allocated(m));
        assert!(!rm.is_allocated(MachineId::new(77)));
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn empty_cluster_panics() {
        let _ = ResourceManager::new(0);
    }
}
