//! The Resource Manager (RM).
//!
//! §4.2: "The Resource Management component is responsible for keeping
//! track of currently allocated and idle resources (e.g., machines, GPUs)"
//! with the API `reserveIdleMachine() → machineId` and
//! `releaseMachine(machineId)`. A slot may be a machine or a GPU; the
//! scheduler does not distinguish.
//!
//! The RM additionally tracks machine liveness for fault injection and
//! recovery: a dead machine is never handed out by
//! [`reserve_idle_machine`](ResourceManager::reserve_idle_machine) and does
//! not count as capacity until it recovers.

use hyperdrive_types::{Error, MachineId, Result};

/// Tracks which machines (slots) are idle, allocated, or dead.
#[derive(Debug, Clone)]
pub struct ResourceManager {
    /// `true` = allocated, indexed by machine id.
    allocated: Vec<bool>,
    /// `true` = crashed and not yet recovered, indexed by machine id.
    dead: Vec<bool>,
}

impl ResourceManager {
    /// Creates a manager over `n` machines, all idle and alive.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyCluster`] if `n` is zero.
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(Error::EmptyCluster);
        }
        Ok(ResourceManager { allocated: vec![false; n], dead: vec![false; n] })
    }

    /// Total number of machines, dead or alive.
    pub fn total(&self) -> usize {
        self.allocated.len()
    }

    /// Number of machines currently alive (not crashed).
    pub fn alive_count(&self) -> usize {
        self.dead.iter().filter(|d| !**d).count()
    }

    /// Number of idle machines (alive and unallocated).
    pub fn idle_count(&self) -> usize {
        self.allocated.iter().zip(&self.dead).filter(|(alloc, dead)| !**alloc && !**dead).count()
    }

    /// Number of allocated machines.
    pub fn allocated_count(&self) -> usize {
        self.allocated.iter().filter(|a| **a).count()
    }

    /// Reserves the lowest-numbered idle machine, or `None` if every alive
    /// machine is busy. (`reserveIdleMachine` in the paper's API.)
    pub fn reserve_idle_machine(&mut self) -> Option<MachineId> {
        let idx =
            self.allocated.iter().zip(&self.dead).position(|(alloc, dead)| !*alloc && !*dead)?;
        self.allocated[idx] = true;
        Some(MachineId::new(idx as u64))
    }

    /// Releases a previously reserved machine. (`releaseMachine`.)
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for ids outside the cluster and
    /// [`Error::InvalidParameter`] when releasing an already-idle machine
    /// (a double release is always a framework bug worth surfacing).
    pub fn release_machine(&mut self, machine: MachineId) -> Result<()> {
        let idx = machine.raw() as usize;
        let slot = self.allocated.get_mut(idx).ok_or(Error::UnknownMachine(machine.raw()))?;
        if !*slot {
            return Err(Error::InvalidParameter(format!("machine {machine} released while idle")));
        }
        *slot = false;
        Ok(())
    }

    /// True if the machine is currently reserved.
    pub fn is_allocated(&self, machine: MachineId) -> bool {
        self.allocated.get(machine.raw() as usize).copied().unwrap_or(false)
    }

    /// True if the machine has crashed and not yet recovered.
    pub fn is_dead(&self, machine: MachineId) -> bool {
        self.dead.get(machine.raw() as usize).copied().unwrap_or(false)
    }

    /// Marks a machine dead after a crash. Any allocation on it is dropped
    /// (the work is gone; the Job Manager handles the hosted job).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for ids outside the cluster and
    /// [`Error::InvalidParameter`] if the machine is already dead.
    pub fn mark_dead(&mut self, machine: MachineId) -> Result<()> {
        let idx = machine.raw() as usize;
        let dead = self.dead.get_mut(idx).ok_or(Error::UnknownMachine(machine.raw()))?;
        if *dead {
            return Err(Error::InvalidParameter(format!(
                "machine {machine} crashed while already dead"
            )));
        }
        *dead = true;
        self.allocated[idx] = false;
        Ok(())
    }

    /// Returns a recovered machine to service, idle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for ids outside the cluster and
    /// [`Error::InvalidParameter`] if the machine was not dead.
    pub fn mark_recovered(&mut self, machine: MachineId) -> Result<()> {
        let idx = machine.raw() as usize;
        let dead = self.dead.get_mut(idx).ok_or(Error::UnknownMachine(machine.raw()))?;
        if !*dead {
            return Err(Error::InvalidParameter(format!(
                "machine {machine} recovered while alive"
            )));
        }
        *dead = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm(n: usize) -> ResourceManager {
        ResourceManager::new(n).unwrap()
    }

    #[test]
    fn reserve_and_release_cycle() {
        let mut rm = rm(2);
        assert_eq!(rm.idle_count(), 2);
        let a = rm.reserve_idle_machine().unwrap();
        let b = rm.reserve_idle_machine().unwrap();
        assert_ne!(a, b);
        assert_eq!(rm.idle_count(), 0);
        assert!(rm.reserve_idle_machine().is_none());
        rm.release_machine(a).unwrap();
        assert_eq!(rm.idle_count(), 1);
        let c = rm.reserve_idle_machine().unwrap();
        assert_eq!(c, a, "lowest-numbered idle machine is reused");
    }

    #[test]
    fn double_release_is_an_error() {
        let mut rm = rm(1);
        let m = rm.reserve_idle_machine().unwrap();
        rm.release_machine(m).unwrap();
        assert!(rm.release_machine(m).is_err());
    }

    #[test]
    fn unknown_machine_is_an_error() {
        let mut rm = rm(1);
        assert!(matches!(rm.release_machine(MachineId::new(9)), Err(Error::UnknownMachine(9))));
    }

    #[test]
    fn allocation_status_is_tracked() {
        let mut rm = rm(2);
        let m = rm.reserve_idle_machine().unwrap();
        assert!(rm.is_allocated(m));
        rm.release_machine(m).unwrap();
        assert!(!rm.is_allocated(m));
        assert!(!rm.is_allocated(MachineId::new(77)));
    }

    #[test]
    fn empty_cluster_is_an_error() {
        assert_eq!(ResourceManager::new(0).unwrap_err(), Error::EmptyCluster);
    }

    #[test]
    fn dead_machines_are_skipped_and_recover_idle() {
        let mut rm = rm(3);
        let m0 = rm.reserve_idle_machine().unwrap();
        assert_eq!(m0, MachineId::new(0));
        rm.mark_dead(m0).unwrap();
        assert!(rm.is_dead(m0));
        assert!(!rm.is_allocated(m0), "crash drops the allocation");
        assert_eq!(rm.alive_count(), 2);
        assert_eq!(rm.idle_count(), 2);
        // Reservation skips the dead machine.
        assert_eq!(rm.reserve_idle_machine(), Some(MachineId::new(1)));
        rm.mark_recovered(m0).unwrap();
        assert!(!rm.is_dead(m0));
        assert_eq!(rm.reserve_idle_machine(), Some(m0), "recovered machine is idle");
    }

    #[test]
    fn liveness_transitions_are_validated() {
        let mut rm = rm(1);
        let m = MachineId::new(0);
        assert!(rm.mark_recovered(m).is_err(), "recover while alive");
        rm.mark_dead(m).unwrap();
        assert!(rm.mark_dead(m).is_err(), "double crash");
        assert!(rm.mark_dead(MachineId::new(9)).is_err(), "unknown machine");
        assert!(rm.mark_recovered(MachineId::new(9)).is_err());
    }
}
