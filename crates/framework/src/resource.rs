//! The Resource Manager (RM).
//!
//! §4.2: "The Resource Management component is responsible for keeping
//! track of currently allocated and idle resources (e.g., machines, GPUs)"
//! with the API `reserveIdleMachine() → machineId` and
//! `releaseMachine(machineId)`. A slot may be a machine or a GPU; the
//! scheduler does not distinguish.
//!
//! The RM additionally tracks machine liveness for fault injection and
//! recovery: a dead machine is never handed out by
//! [`reserve_idle_machine`](ResourceManager::reserve_idle_machine) and does
//! not count as capacity until it recovers.
//!
//! # Two backends, one contract
//!
//! The engine queries the RM on every event (`idle_count` for the
//! `AllocateJobs` up-call, `reserve_idle_machine` per start attempt), so
//! per-call linear scans made the whole event loop O(machines). The RM now
//! carries two interchangeable backends:
//!
//! - **fast** (default): a hierarchical-bitset free-set ([`IdleSet`]) over
//!   idle machine ids plus cached allocated/dead counters. Reservation is
//!   min-extract over the bitset — O(log₆₄ n) worst case — and every
//!   counter is O(1). No allocation after construction.
//! - **reference**: the original O(n)-scan implementation, retained
//!   verbatim. Selected with `HYPERDRIVE_RM=reference`; the scale bench
//!   runs the whole event loop on it to measure the speedup, and a
//!   proptest pins the two backends op-for-op equivalent.
//!
//! Determinism argument: [`IdleSet::min`] returns the smallest set id, and
//! the set contains exactly the ids with `!allocated && !dead` — the same
//! machine the reference scan's `position()` finds. Both backends therefore
//! emit identical machine ids in identical order for any input sequence,
//! which is why every golden trace is byte-identical under either. Debug
//! builds re-verify the cached counters and set membership against a fresh
//! scan after every mutation.

use hyperdrive_types::{Error, MachineId, Result};

/// A fixed-universe ordered set of machine ids with O(log₆₄ n)
/// `min`/`insert`/`remove` and O(1) `contains`, backed by a hierarchy of
/// bitmask words: bit `j` of a word at level `k+1` summarizes whether word
/// `j` at level `k` is nonzero. The top level is always a single word, so
/// `min` walks at most ⌈log₆₄ n⌉ words. Never allocates after
/// construction.
#[derive(Debug, Clone)]
struct IdleSet {
    /// `levels[0]` holds one bit per id; each higher level summarizes the
    /// one below. The last level is a single word.
    levels: Vec<Vec<u64>>,
}

impl IdleSet {
    /// Creates the set over universe `0..n` with every id present.
    /// `n` must be nonzero.
    fn full(n: usize) -> Self {
        debug_assert!(n > 0);
        let mut levels = Vec::new();
        let mut count = n;
        loop {
            let words = count.div_ceil(64);
            let mut level = vec![!0u64; words];
            let rem = count % 64;
            if rem != 0 {
                level[words - 1] = (1u64 << rem) - 1;
            }
            levels.push(level);
            if words == 1 {
                break;
            }
            count = words;
        }
        IdleSet { levels }
    }

    /// True if `id` is in the set. Release builds only consult the set
    /// through `min`; membership is re-verified by the debug-build
    /// invariant checks.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn contains(&self, id: usize) -> bool {
        (self.levels[0][id / 64] >> (id % 64)) & 1 == 1
    }

    /// Inserts `id` (no-op if present).
    fn insert(&mut self, id: usize) {
        let mut idx = id;
        for level in &mut self.levels {
            let word = &mut level[idx / 64];
            let bit = 1u64 << (idx % 64);
            if *word & bit != 0 {
                break; // this word (and every summary above) already set
            }
            *word |= bit;
            idx /= 64;
        }
    }

    /// Removes `id` (no-op if absent).
    fn remove(&mut self, id: usize) {
        let mut idx = id;
        for level in &mut self.levels {
            let word = &mut level[idx / 64];
            *word &= !(1u64 << (idx % 64));
            if *word != 0 {
                break; // word still nonzero: summaries above stay set
            }
            idx /= 64;
        }
    }

    /// The smallest id in the set, or `None` if empty.
    fn min(&self) -> Option<usize> {
        let top = self.levels.len() - 1;
        if self.levels[top][0] == 0 {
            return None;
        }
        let mut idx = 0usize;
        for level in self.levels.iter().rev() {
            let word = level[idx];
            debug_assert!(word != 0, "summary bit set over an empty word");
            idx = idx * 64 + word.trailing_zeros() as usize;
        }
        Some(idx)
    }
}

/// The fast backend: free-set + cached counters. All queries O(1), all
/// mutations O(log₆₄ n), zero allocation after construction.
#[derive(Debug, Clone)]
struct FastRm {
    /// Exactly the ids with `!allocated && !dead`.
    idle: IdleSet,
    /// `true` = allocated, indexed by machine id.
    allocated: Vec<bool>,
    /// `true` = crashed and not yet recovered, indexed by machine id.
    dead: Vec<bool>,
    /// Cached `allocated.iter().filter(|a| **a).count()`.
    n_allocated: usize,
    /// Cached `dead.iter().filter(|d| **d).count()`.
    n_dead: usize,
}

impl FastRm {
    fn new(n: usize) -> Self {
        FastRm {
            idle: IdleSet::full(n),
            allocated: vec![false; n],
            dead: vec![false; n],
            n_allocated: 0,
            n_dead: 0,
        }
    }

    /// Debug-build invariant check: the cached counters and the free-set
    /// must match a fresh scan of the raw state after every mutation.
    #[cfg(debug_assertions)]
    fn assert_counters(&self) {
        let scanned_alloc = self.allocated.iter().filter(|a| **a).count();
        let scanned_dead = self.dead.iter().filter(|d| **d).count();
        assert_eq!(self.n_allocated, scanned_alloc, "cached allocated count diverged from scan");
        assert_eq!(self.n_dead, scanned_dead, "cached dead count diverged from scan");
        for id in 0..self.allocated.len() {
            assert_eq!(
                self.idle.contains(id),
                !self.allocated[id] && !self.dead[id],
                "free-set membership diverged from scan at machine {id}"
            );
        }
    }

    #[cfg(not(debug_assertions))]
    fn assert_counters(&self) {}
}

/// The retained reference backend: the original per-call linear scans.
/// Kept so the scale bench can measure the real event loop on the old
/// complexity and so the equivalence proptest has an oracle.
#[derive(Debug, Clone)]
struct ReferenceRm {
    allocated: Vec<bool>,
    dead: Vec<bool>,
}

#[derive(Debug, Clone)]
enum Backend {
    Fast(FastRm),
    Reference(ReferenceRm),
}

/// Tracks which machines (slots) are idle, allocated, or dead.
#[derive(Debug, Clone)]
pub struct ResourceManager {
    backend: Backend,
}

impl ResourceManager {
    /// Creates a manager over `n` machines, all idle and alive.
    ///
    /// Honors `HYPERDRIVE_RM=reference` to select the retained O(n)-scan
    /// backend (a pure perf switch: both backends emit byte-identical
    /// traces); anything else selects the fast free-set backend.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyCluster`] if `n` is zero.
    pub fn new(n: usize) -> Result<Self> {
        if std::env::var("HYPERDRIVE_RM").is_ok_and(|v| v == "reference") {
            Self::new_reference(n)
        } else {
            Self::new_fast(n)
        }
    }

    /// Creates a manager on the fast free-set backend regardless of
    /// environment.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyCluster`] if `n` is zero.
    pub fn new_fast(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(Error::EmptyCluster);
        }
        Ok(ResourceManager { backend: Backend::Fast(FastRm::new(n)) })
    }

    /// Creates a manager on the retained reference (linear-scan) backend
    /// regardless of environment.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyCluster`] if `n` is zero.
    pub fn new_reference(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(Error::EmptyCluster);
        }
        Ok(ResourceManager {
            backend: Backend::Reference(ReferenceRm {
                allocated: vec![false; n],
                dead: vec![false; n],
            }),
        })
    }

    /// Total number of machines, dead or alive.
    pub fn total(&self) -> usize {
        match &self.backend {
            Backend::Fast(rm) => rm.allocated.len(),
            Backend::Reference(rm) => rm.allocated.len(),
        }
    }

    /// Number of machines currently alive (not crashed). O(1) on the fast
    /// backend.
    pub fn alive_count(&self) -> usize {
        match &self.backend {
            Backend::Fast(rm) => rm.allocated.len() - rm.n_dead,
            Backend::Reference(rm) => rm.dead.iter().filter(|d| !**d).count(),
        }
    }

    /// Number of idle machines (alive and unallocated). O(1) on the fast
    /// backend: allocated and dead are disjoint (a crash drops the
    /// allocation), so idle = total − allocated − dead.
    pub fn idle_count(&self) -> usize {
        match &self.backend {
            Backend::Fast(rm) => rm.allocated.len() - rm.n_allocated - rm.n_dead,
            Backend::Reference(rm) => rm
                .allocated
                .iter()
                .zip(&rm.dead)
                .filter(|(alloc, dead)| !**alloc && !**dead)
                .count(),
        }
    }

    /// Number of allocated machines. O(1) on the fast backend.
    pub fn allocated_count(&self) -> usize {
        match &self.backend {
            Backend::Fast(rm) => rm.n_allocated,
            Backend::Reference(rm) => rm.allocated.iter().filter(|a| **a).count(),
        }
    }

    /// Number of machines currently dead (crashed, not yet recovered).
    /// O(1) on the fast backend.
    pub fn dead_count(&self) -> usize {
        match &self.backend {
            Backend::Fast(rm) => rm.n_dead,
            Backend::Reference(rm) => rm.dead.iter().filter(|d| **d).count(),
        }
    }

    /// Reserves the lowest-numbered idle machine, or `None` if every alive
    /// machine is busy. (`reserveIdleMachine` in the paper's API.)
    pub fn reserve_idle_machine(&mut self) -> Option<MachineId> {
        match &mut self.backend {
            Backend::Fast(rm) => {
                let idx = rm.idle.min()?;
                rm.idle.remove(idx);
                rm.allocated[idx] = true;
                rm.n_allocated += 1;
                rm.assert_counters();
                Some(MachineId::new(idx as u64))
            }
            Backend::Reference(rm) => {
                let idx = rm
                    .allocated
                    .iter()
                    .zip(&rm.dead)
                    .position(|(alloc, dead)| !*alloc && !*dead)?;
                rm.allocated[idx] = true;
                Some(MachineId::new(idx as u64))
            }
        }
    }

    /// Releases a previously reserved machine. (`releaseMachine`.)
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for ids outside the cluster and
    /// [`Error::InvalidParameter`] when releasing an already-idle machine
    /// (a double release is always a framework bug worth surfacing).
    pub fn release_machine(&mut self, machine: MachineId) -> Result<()> {
        let idx = machine.raw() as usize;
        match &mut self.backend {
            Backend::Fast(rm) => {
                let slot = rm.allocated.get_mut(idx).ok_or(Error::UnknownMachine(machine.raw()))?;
                if !*slot {
                    return Err(Error::InvalidParameter(format!(
                        "machine {machine} released while idle"
                    )));
                }
                *slot = false;
                rm.n_allocated -= 1;
                // An allocated machine is never dead, so it goes back idle.
                rm.idle.insert(idx);
                rm.assert_counters();
                Ok(())
            }
            Backend::Reference(rm) => {
                let slot = rm.allocated.get_mut(idx).ok_or(Error::UnknownMachine(machine.raw()))?;
                if !*slot {
                    return Err(Error::InvalidParameter(format!(
                        "machine {machine} released while idle"
                    )));
                }
                *slot = false;
                Ok(())
            }
        }
    }

    /// True if the machine is currently reserved.
    pub fn is_allocated(&self, machine: MachineId) -> bool {
        let idx = machine.raw() as usize;
        match &self.backend {
            Backend::Fast(rm) => rm.allocated.get(idx).copied().unwrap_or(false),
            Backend::Reference(rm) => rm.allocated.get(idx).copied().unwrap_or(false),
        }
    }

    /// True if the machine has crashed and not yet recovered.
    pub fn is_dead(&self, machine: MachineId) -> bool {
        let idx = machine.raw() as usize;
        match &self.backend {
            Backend::Fast(rm) => rm.dead.get(idx).copied().unwrap_or(false),
            Backend::Reference(rm) => rm.dead.get(idx).copied().unwrap_or(false),
        }
    }

    /// Marks a machine dead after a crash. Any allocation on it is dropped
    /// (the work is gone; the Job Manager handles the hosted job).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for ids outside the cluster and
    /// [`Error::InvalidParameter`] if the machine is already dead.
    pub fn mark_dead(&mut self, machine: MachineId) -> Result<()> {
        let idx = machine.raw() as usize;
        match &mut self.backend {
            Backend::Fast(rm) => {
                let dead = rm.dead.get_mut(idx).ok_or(Error::UnknownMachine(machine.raw()))?;
                if *dead {
                    return Err(Error::InvalidParameter(format!(
                        "machine {machine} crashed while already dead"
                    )));
                }
                *dead = true;
                rm.n_dead += 1;
                if rm.allocated[idx] {
                    rm.allocated[idx] = false;
                    rm.n_allocated -= 1;
                }
                // Dead machines are never idle, whatever they were before.
                rm.idle.remove(idx);
                rm.assert_counters();
                Ok(())
            }
            Backend::Reference(rm) => {
                let dead = rm.dead.get_mut(idx).ok_or(Error::UnknownMachine(machine.raw()))?;
                if *dead {
                    return Err(Error::InvalidParameter(format!(
                        "machine {machine} crashed while already dead"
                    )));
                }
                *dead = true;
                rm.allocated[idx] = false;
                Ok(())
            }
        }
    }

    /// Returns a recovered machine to service, idle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for ids outside the cluster and
    /// [`Error::InvalidParameter`] if the machine was not dead.
    pub fn mark_recovered(&mut self, machine: MachineId) -> Result<()> {
        let idx = machine.raw() as usize;
        match &mut self.backend {
            Backend::Fast(rm) => {
                let dead = rm.dead.get_mut(idx).ok_or(Error::UnknownMachine(machine.raw()))?;
                if !*dead {
                    return Err(Error::InvalidParameter(format!(
                        "machine {machine} recovered while alive"
                    )));
                }
                *dead = false;
                rm.n_dead -= 1;
                // A crash dropped any allocation, so a recovered machine is
                // idle by construction.
                rm.idle.insert(idx);
                rm.assert_counters();
                Ok(())
            }
            Backend::Reference(rm) => {
                let dead = rm.dead.get_mut(idx).ok_or(Error::UnknownMachine(machine.raw()))?;
                if !*dead {
                    return Err(Error::InvalidParameter(format!(
                        "machine {machine} recovered while alive"
                    )));
                }
                *dead = false;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm(n: usize) -> ResourceManager {
        ResourceManager::new_fast(n).unwrap()
    }

    #[test]
    fn reserve_and_release_cycle() {
        let mut rm = rm(2);
        assert_eq!(rm.idle_count(), 2);
        let a = rm.reserve_idle_machine().unwrap();
        let b = rm.reserve_idle_machine().unwrap();
        assert_ne!(a, b);
        assert_eq!(rm.idle_count(), 0);
        assert!(rm.reserve_idle_machine().is_none());
        rm.release_machine(a).unwrap();
        assert_eq!(rm.idle_count(), 1);
        let c = rm.reserve_idle_machine().unwrap();
        assert_eq!(c, a, "lowest-numbered idle machine is reused");
    }

    #[test]
    fn double_release_is_an_error() {
        let mut rm = rm(1);
        let m = rm.reserve_idle_machine().unwrap();
        rm.release_machine(m).unwrap();
        assert!(rm.release_machine(m).is_err());
    }

    #[test]
    fn unknown_machine_is_an_error() {
        let mut rm = rm(1);
        assert!(matches!(rm.release_machine(MachineId::new(9)), Err(Error::UnknownMachine(9))));
    }

    #[test]
    fn allocation_status_is_tracked() {
        let mut rm = rm(2);
        let m = rm.reserve_idle_machine().unwrap();
        assert!(rm.is_allocated(m));
        rm.release_machine(m).unwrap();
        assert!(!rm.is_allocated(m));
        assert!(!rm.is_allocated(MachineId::new(77)));
    }

    #[test]
    fn empty_cluster_is_an_error() {
        assert_eq!(ResourceManager::new(0).unwrap_err(), Error::EmptyCluster);
        assert_eq!(ResourceManager::new_fast(0).unwrap_err(), Error::EmptyCluster);
        assert_eq!(ResourceManager::new_reference(0).unwrap_err(), Error::EmptyCluster);
    }

    #[test]
    fn dead_machines_are_skipped_and_recover_idle() {
        let mut rm = rm(3);
        let m0 = rm.reserve_idle_machine().unwrap();
        assert_eq!(m0, MachineId::new(0));
        rm.mark_dead(m0).unwrap();
        assert!(rm.is_dead(m0));
        assert!(!rm.is_allocated(m0), "crash drops the allocation");
        assert_eq!(rm.alive_count(), 2);
        assert_eq!(rm.idle_count(), 2);
        // Reservation skips the dead machine.
        assert_eq!(rm.reserve_idle_machine(), Some(MachineId::new(1)));
        rm.mark_recovered(m0).unwrap();
        assert!(!rm.is_dead(m0));
        assert_eq!(rm.reserve_idle_machine(), Some(m0), "recovered machine is idle");
    }

    #[test]
    fn liveness_transitions_are_validated() {
        let mut rm = rm(1);
        let m = MachineId::new(0);
        assert!(rm.mark_recovered(m).is_err(), "recover while alive");
        rm.mark_dead(m).unwrap();
        assert!(rm.mark_dead(m).is_err(), "double crash");
        assert!(rm.mark_dead(MachineId::new(9)).is_err(), "unknown machine");
        assert!(rm.mark_recovered(MachineId::new(9)).is_err());
    }

    #[test]
    fn dead_count_tracks_crashes_and_recoveries() {
        let mut rm = rm(4);
        assert_eq!(rm.dead_count(), 0);
        rm.mark_dead(MachineId::new(1)).unwrap();
        rm.mark_dead(MachineId::new(3)).unwrap();
        assert_eq!(rm.dead_count(), 2);
        rm.mark_recovered(MachineId::new(1)).unwrap();
        assert_eq!(rm.dead_count(), 1);
    }

    #[test]
    fn idle_set_min_spans_word_boundaries() {
        // A universe big enough for three bitset levels (> 64² ids).
        let n = 64 * 64 + 17;
        let mut rm = rm(n);
        // Drain the first 130 machines; the min-extract must hand out
        // 0, 1, 2, ... in order across word boundaries.
        for want in 0..130u64 {
            assert_eq!(rm.reserve_idle_machine(), Some(MachineId::new(want)));
        }
        assert_eq!(rm.idle_count(), n - 130);
        // Releasing a low machine makes it the minimum again.
        rm.release_machine(MachineId::new(65)).unwrap();
        assert_eq!(rm.reserve_idle_machine(), Some(MachineId::new(65)));
        // Kill everything below 128: the minimum must skip all of it.
        for id in 0..128u64 {
            rm.mark_dead(MachineId::new(id)).unwrap();
        }
        assert_eq!(rm.reserve_idle_machine(), Some(MachineId::new(130)));
        assert_eq!(rm.dead_count(), 128);
        assert_eq!(rm.alive_count(), n - 128);
    }

    /// The fast backend must be op-for-op indistinguishable from the
    /// retained reference scans: same reservations (ids and order), same
    /// errors, same counters, under arbitrary interleavings of the whole
    /// API. This is the determinism pin that lets the free-set replace
    /// the scan without touching a single golden trace.
    mod equivalence {
        use super::*;
        use proptest::prelude::*;
        use proptest::strategy::TestRng;

        #[derive(Debug, Clone, Copy)]
        enum Op {
            Reserve,
            Release(u64),
            MarkDead(u64),
            MarkRecovered(u64),
        }

        /// Strategy over op sequences (the vendored proptest has no
        /// `prop_oneof`/`prop_map`, so this is a hand-rolled generator).
        #[derive(Debug, Clone)]
        struct OpsStrategy {
            max_universe: u64,
            max_len: usize,
        }

        impl Strategy for OpsStrategy {
            type Value = Vec<Op>;

            fn generate(&self, rng: &mut TestRng) -> Vec<Op> {
                use rand::Rng;
                let n = rng.gen_range(0..self.max_len);
                (0..n)
                    .map(|_| {
                        // Ids reach slightly past the cluster so
                        // unknown-machine errors are exercised too.
                        let id = rng.gen_range(0..self.max_universe + 2);
                        match rng.gen_range(0u8..4) {
                            0 => Op::Reserve,
                            1 => Op::Release(id),
                            2 => Op::MarkDead(id),
                            _ => Op::MarkRecovered(id),
                        }
                    })
                    .collect()
            }
        }

        fn check(fast: &ResourceManager, reference: &ResourceManager, step: usize) {
            assert_eq!(fast.total(), reference.total());
            assert_eq!(fast.alive_count(), reference.alive_count(), "alive at step {step}");
            assert_eq!(fast.idle_count(), reference.idle_count(), "idle at step {step}");
            assert_eq!(
                fast.allocated_count(),
                reference.allocated_count(),
                "allocated at step {step}"
            );
            assert_eq!(fast.dead_count(), reference.dead_count(), "dead at step {step}");
            for id in 0..fast.total() as u64 {
                let m = MachineId::new(id);
                assert_eq!(fast.is_allocated(m), reference.is_allocated(m));
                assert_eq!(fast.is_dead(m), reference.is_dead(m));
            }
        }

        proptest! {
            #[test]
            fn fast_backend_matches_reference(
                n in 1usize..200,
                ops in (OpsStrategy { max_universe: 200, max_len: 400 }),
            ) {
                let mut fast = ResourceManager::new_fast(n).unwrap();
                let mut reference = ResourceManager::new_reference(n).unwrap();
                for (step, op) in ops.iter().enumerate() {
                    match *op {
                        Op::Reserve => {
                            prop_assert_eq!(
                                fast.reserve_idle_machine(),
                                reference.reserve_idle_machine(),
                                "reserve diverged at step {}", step
                            );
                        }
                        Op::Release(id) => {
                            let m = MachineId::new(id);
                            prop_assert_eq!(
                                fast.release_machine(m).is_ok(),
                                reference.release_machine(m).is_ok(),
                                "release({}) diverged at step {}", id, step
                            );
                        }
                        Op::MarkDead(id) => {
                            let m = MachineId::new(id);
                            prop_assert_eq!(
                                fast.mark_dead(m).is_ok(),
                                reference.mark_dead(m).is_ok(),
                                "mark_dead({}) diverged at step {}", id, step
                            );
                        }
                        Op::MarkRecovered(id) => {
                            let m = MachineId::new(id);
                            prop_assert_eq!(
                                fast.mark_recovered(m).is_ok(),
                                reference.mark_recovered(m).is_ok(),
                                "mark_recovered({}) diverged at step {}", id, step
                            );
                        }
                    }
                    check(&fast, &reference, step);
                }
            }
        }
    }
}
