//! The Job Manager (JM).
//!
//! §4.2: the JM "provides the ability to start, resume, suspend, and
//! terminate jobs on specific machines obtained from the RM" and "keeps
//! track of each job's state based on the actions performed on it". It also
//! supports `labelJob(jobID, priority)`: "Priority ordering is especially
//! important when adding a suspended job to the list of idle jobs. If no
//! priority is given then idle jobs are ordered according to FIFO order."

use std::cell::OnceCell;
use std::collections::BTreeSet;

use hyperdrive_types::{Error, JobId, MachineId, Result};

use crate::dense::DenseMap;

/// The lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobState {
    /// Waiting in the idle queue (never started, or suspended and
    /// re-queued).
    Idle,
    /// Executing on a machine.
    Running(MachineId),
    /// A suspend request is in flight; state is being captured.
    Suspending(MachineId),
    /// Terminated early by policy decision.
    Terminated,
    /// Ran to its maximum epoch.
    Completed,
    /// Interrupted by faults until its retry budget ran out.
    Failed,
}

impl JobState {
    /// The machine the job occupies, if any.
    pub fn machine(&self) -> Option<MachineId> {
        match self {
            JobState::Running(m) | JobState::Suspending(m) => Some(*m),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
struct JobEntry {
    state: JobState,
    /// Priority label; idle ordering is (priority desc, arrival asc).
    priority: f64,
    /// Monotonic arrival counter for FIFO tie-breaking, refreshed whenever
    /// the job re-enters the idle queue.
    arrival: u64,
    /// Epochs completed so far (resume continues from here).
    epochs_done: u32,
    /// Whether the job has run before (a start after this is a resume).
    started_before: bool,
}

/// Idle-queue ordering key: priority descending, then FIFO arrival, then
/// id — the same total order the listing slice exposes. Priorities are
/// never NaN ([`JobManager::label_job`] rejects them), so the comparison
/// is total.
#[derive(Debug, Clone, Copy, PartialEq)]
struct IdleKey {
    priority: f64,
    arrival: u64,
    id: JobId,
}

impl Eq for IdleKey {}

impl PartialOrd for IdleKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IdleKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .priority
            .partial_cmp(&self.priority)
            .expect("priorities are never NaN")
            .then(self.arrival.cmp(&other.arrival))
            .then(self.id.cmp(&other.id))
    }
}

/// Tracks every job's state and orders the idle queue.
///
/// The three listing sets — idle, running, active — are ordered B-tree
/// sets, so every state transition is O(log n); the old eagerly-sorted
/// `Vec` indexes paid an O(n) memmove per transition, which dominated
/// wall-clock at 10k+ machines. The slice accessors policies iterate are
/// materialized lazily into per-set caches (invalidated on mutation), so
/// executors that never ask for a listing — the default-policy hot loop —
/// never pay for one, and repeated reads between transitions are free.
/// Ordering is unchanged: id-ascending for running/active, (priority
/// desc, arrival asc, id asc) for idle, so traces are byte-identical.
#[derive(Debug, Default)]
pub struct JobManager {
    jobs: DenseMap<JobEntry>,
    arrival_counter: u64,
    /// Idle jobs in queue order: priority desc, arrival asc, id asc.
    idle_queue: BTreeSet<IdleKey>,
    /// Running jobs ordered by id.
    running_set: BTreeSet<JobId>,
    /// Active (running, suspending, or idle) jobs ordered by id.
    active_set: BTreeSet<JobId>,
    idle_cache: OnceCell<Vec<JobId>>,
    running_cache: OnceCell<Vec<JobId>>,
    active_cache: OnceCell<Vec<JobId>>,
}

impl JobManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new job in the idle queue with default (zero) priority.
    ///
    /// # Panics
    ///
    /// Panics if the job id is already registered.
    pub fn add_job(&mut self, job: JobId) {
        let arrival = self.next_arrival();
        let prev = self.jobs.insert(
            job,
            JobEntry {
                state: JobState::Idle,
                priority: 0.0,
                arrival,
                epochs_done: 0,
                started_before: false,
            },
        );
        assert!(prev.is_none(), "job {job} registered twice");
        self.add_active(job);
        self.enqueue_idle(job);
    }

    /// The idle-queue key for `job` as currently labeled. Valid only while
    /// the entry's priority and arrival match what was enqueued — every
    /// mutation that changes either dequeues first.
    fn idle_key(&self, job: JobId) -> IdleKey {
        let e = self.jobs.get(job).expect("idle job is registered");
        IdleKey { priority: e.priority, arrival: e.arrival, id: job }
    }

    /// Inserts `job` into the idle queue at its sorted position.
    fn enqueue_idle(&mut self, job: JobId) {
        let key = self.idle_key(job);
        self.idle_queue.insert(key);
        self.idle_cache.take();
    }

    /// Removes `job` from the idle queue (no-op if absent).
    fn dequeue_idle(&mut self, job: JobId) {
        let key = self.idle_key(job);
        if self.idle_queue.remove(&key) {
            self.idle_cache.take();
        }
    }

    fn add_running(&mut self, job: JobId) {
        self.running_set.insert(job);
        self.running_cache.take();
    }

    fn remove_running(&mut self, job: JobId) {
        if self.running_set.remove(&job) {
            self.running_cache.take();
        }
    }

    fn add_active(&mut self, job: JobId) {
        self.active_set.insert(job);
        self.active_cache.take();
    }

    fn remove_active(&mut self, job: JobId) {
        if self.active_set.remove(&job) {
            self.active_cache.take();
        }
    }

    fn next_arrival(&mut self) -> u64 {
        let a = self.arrival_counter;
        self.arrival_counter += 1;
        a
    }

    fn entry(&self, job: JobId) -> Result<&JobEntry> {
        self.jobs.get(job).ok_or(Error::UnknownJob(job.raw()))
    }

    fn entry_mut(&mut self, job: JobId) -> Result<&mut JobEntry> {
        self.jobs.get_mut(job).ok_or(Error::UnknownJob(job.raw()))
    }

    /// Current state of a job.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownJob`] for unregistered ids.
    pub fn state(&self, job: JobId) -> Result<JobState> {
        Ok(self.entry(job)?.state)
    }

    /// Number of epochs the job has completed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownJob`] for unregistered ids.
    pub fn epochs_done(&self, job: JobId) -> Result<u32> {
        Ok(self.entry(job)?.epochs_done)
    }

    /// Records completion of one more epoch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownJob`] or [`Error::InvalidJobState`] if the
    /// job is not running.
    pub fn record_epoch(&mut self, job: JobId) -> Result<u32> {
        let e = self.entry_mut(job)?;
        if !matches!(e.state, JobState::Running(_)) {
            return Err(Error::InvalidJobState {
                job: job.raw(),
                detail: "epoch recorded while not running".into(),
            });
        }
        e.epochs_done += 1;
        Ok(e.epochs_done)
    }

    /// The highest-priority idle job (`getIdleJob`), without removing it.
    /// Ordering: priority descending, then FIFO arrival.
    pub fn peek_idle_job(&self) -> Option<JobId> {
        self.idle_queue.first().map(|k| k.id)
    }

    /// All idle jobs in queue order, materialized lazily from the ordered
    /// set and cached until the next queue mutation.
    pub fn idle_jobs(&self) -> &[JobId] {
        self.idle_cache.get_or_init(|| self.idle_queue.iter().map(|k| k.id).collect())
    }

    /// Number of idle jobs, without materializing the listing.
    pub fn idle_len(&self) -> usize {
        self.idle_queue.len()
    }

    /// All running jobs, sorted by job id. The fixed order matters:
    /// policies iterate these lists when building batch fit requests, and
    /// hash-map iteration order would leak into scheduling decisions.
    /// Materialized lazily and cached until the next state transition.
    pub fn running_jobs(&self) -> &[JobId] {
        self.running_cache.get_or_init(|| self.running_set.iter().copied().collect())
    }

    /// Number of running jobs, without materializing the listing.
    pub fn running_len(&self) -> usize {
        self.running_set.len()
    }

    /// All active jobs — running, suspending, or idle-but-not-finished —
    /// sorted by job id (see [`running_jobs`](Self::running_jobs) for why
    /// the order is fixed). The paper's "non-terminated" set used for the
    /// tail distribution. Materialized lazily and cached until the next
    /// state transition.
    pub fn active_jobs(&self) -> &[JobId] {
        self.active_cache.get_or_init(|| self.active_set.iter().copied().collect())
    }

    /// Number of active jobs, without materializing the listing.
    pub fn active_len(&self) -> usize {
        self.active_set.len()
    }

    /// Starts (or resumes) an idle job on a machine. Returns `true` if this
    /// is a resume of a previously-run job.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidJobState`] unless the job is idle.
    pub fn start_job(&mut self, job: JobId, machine: MachineId) -> Result<bool> {
        let e = self.entry_mut(job)?;
        if e.state != JobState::Idle {
            return Err(Error::InvalidJobState {
                job: job.raw(),
                detail: format!("start while {:?}", e.state),
            });
        }
        e.state = JobState::Running(machine);
        let resumed = e.started_before;
        e.started_before = true;
        self.dequeue_idle(job);
        self.add_running(job);
        Ok(resumed)
    }

    /// Marks a running job as suspending (state capture in flight).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidJobState`] unless the job is running.
    pub fn begin_suspend(&mut self, job: JobId) -> Result<MachineId> {
        let e = self.entry_mut(job)?;
        match e.state {
            JobState::Running(m) => {
                e.state = JobState::Suspending(m);
                self.remove_running(job);
                Ok(m)
            }
            other => Err(Error::InvalidJobState {
                job: job.raw(),
                detail: format!("suspend while {other:?}"),
            }),
        }
    }

    /// Completes a suspend: the job re-enters the idle queue (fresh FIFO
    /// position, keeping its priority label) and its machine is returned.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidJobState`] unless the job is suspending.
    pub fn finish_suspend(&mut self, job: JobId) -> Result<MachineId> {
        let arrival = self.next_arrival();
        let e = self.entry_mut(job)?;
        match e.state {
            JobState::Suspending(m) => {
                e.state = JobState::Idle;
                e.arrival = arrival;
                self.enqueue_idle(job);
                Ok(m)
            }
            other => Err(Error::InvalidJobState {
                job: job.raw(),
                detail: format!("finish_suspend while {other:?}"),
            }),
        }
    }

    /// Terminates a job from any live state. Returns the machine it held,
    /// if any.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidJobState`] if the job already finished.
    pub fn terminate_job(&mut self, job: JobId) -> Result<Option<MachineId>> {
        let e = self.entry_mut(job)?;
        match e.state {
            JobState::Terminated | JobState::Completed | JobState::Failed => {
                Err(Error::InvalidJobState {
                    job: job.raw(),
                    detail: "terminate after finish".into(),
                })
            }
            state => {
                e.state = JobState::Terminated;
                self.retire(job, state);
                Ok(state.machine())
            }
        }
    }

    /// Drops a finished job from the listing indexes, given its previous
    /// live state.
    fn retire(&mut self, job: JobId, was: JobState) {
        match was {
            JobState::Idle => self.dequeue_idle(job),
            JobState::Running(_) => self.remove_running(job),
            _ => {}
        }
        self.remove_active(job);
    }

    /// Marks a running job as completed (reached its max epoch). Returns
    /// the machine it held.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidJobState`] unless the job is running.
    pub fn complete_job(&mut self, job: JobId) -> Result<MachineId> {
        let e = self.entry_mut(job)?;
        match e.state {
            JobState::Running(m) => {
                e.state = JobState::Completed;
                self.retire(job, JobState::Running(m));
                Ok(m)
            }
            other => Err(Error::InvalidJobState {
                job: job.raw(),
                detail: format!("complete while {other:?}"),
            }),
        }
    }

    /// Interrupts a job whose machine crashed, agent stalled, or suspend
    /// failed: the job rolls back to `epochs` completed epochs (its last
    /// snapshot, or zero) and re-enters the idle queue with a fresh FIFO
    /// position. `has_snapshot` controls whether the next start counts as
    /// a resume (snapshot restore) or a fresh start. Returns the machine
    /// the job held.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidJobState`] unless the job is running or
    /// suspending.
    pub fn interrupt_job(
        &mut self,
        job: JobId,
        epochs: u32,
        has_snapshot: bool,
    ) -> Result<MachineId> {
        let arrival = self.next_arrival();
        let e = self.entry_mut(job)?;
        match e.state {
            JobState::Running(m) | JobState::Suspending(m) => {
                let was_running = matches!(e.state, JobState::Running(_));
                e.state = JobState::Idle;
                e.arrival = arrival;
                e.epochs_done = epochs;
                e.started_before = has_snapshot;
                if was_running {
                    self.remove_running(job);
                }
                self.enqueue_idle(job);
                Ok(m)
            }
            other => Err(Error::InvalidJobState {
                job: job.raw(),
                detail: format!("interrupt while {other:?}"),
            }),
        }
    }

    /// Marks a job as `Failed` after its retry budget is exhausted. The
    /// job leaves the idle queue permanently. Returns the machine it held,
    /// if any.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidJobState`] if the job already finished.
    pub fn fail_job(&mut self, job: JobId) -> Result<Option<MachineId>> {
        let e = self.entry_mut(job)?;
        match e.state {
            JobState::Terminated | JobState::Completed | JobState::Failed => {
                Err(Error::InvalidJobState { job: job.raw(), detail: "fail after finish".into() })
            }
            state => {
                e.state = JobState::Failed;
                self.retire(job, state);
                Ok(state.machine())
            }
        }
    }

    /// Rewinds a running job's completed-epoch counter (restart from
    /// scratch after a corrupted snapshot was discovered at resume time).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidJobState`] unless the job is running.
    pub fn reset_epochs(&mut self, job: JobId, epochs: u32) -> Result<()> {
        let e = self.entry_mut(job)?;
        if !matches!(e.state, JobState::Running(_)) {
            return Err(Error::InvalidJobState {
                job: job.raw(),
                detail: "epoch reset while not running".into(),
            });
        }
        e.epochs_done = epochs;
        Ok(())
    }

    /// Labels a job with a scheduling priority (`labelJob`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownJob`] for unregistered ids or
    /// [`Error::InvalidParameter`] for NaN priorities.
    pub fn label_job(&mut self, job: JobId, priority: f64) -> Result<()> {
        if priority.is_nan() {
            return Err(Error::InvalidParameter("priority cannot be NaN".into()));
        }
        let idle = self.entry(job)?.state == JobState::Idle;
        // Re-labeling an idle job moves it to its new queue position. The
        // old queue key embeds the old priority, so dequeue before the
        // label changes.
        if idle {
            self.dequeue_idle(job);
        }
        self.entry_mut(job)?.priority = priority;
        if idle {
            self.enqueue_idle(job);
        }
        Ok(())
    }

    /// The job's current priority label.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownJob`] for unregistered ids.
    pub fn priority(&self, job: JobId) -> Result<f64> {
        Ok(self.entry(job)?.priority)
    }

    /// Total number of registered jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if no jobs are registered.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jm_with(n: u64) -> JobManager {
        let mut jm = JobManager::new();
        for i in 0..n {
            jm.add_job(JobId::new(i));
        }
        jm
    }

    #[test]
    fn idle_queue_is_fifo_without_priorities() {
        let jm = jm_with(3);
        assert_eq!(jm.peek_idle_job(), Some(JobId::new(0)));
        assert_eq!(jm.idle_jobs(), vec![JobId::new(0), JobId::new(1), JobId::new(2)]);
    }

    #[test]
    fn priority_overrides_fifo() {
        let mut jm = jm_with(3);
        jm.label_job(JobId::new(2), 0.9).unwrap();
        jm.label_job(JobId::new(1), 0.5).unwrap();
        assert_eq!(jm.idle_jobs(), vec![JobId::new(2), JobId::new(1), JobId::new(0)]);
    }

    #[test]
    fn suspend_requeues_at_back_of_equal_priority() {
        let mut jm = jm_with(3);
        let m = MachineId::new(0);
        jm.start_job(JobId::new(0), m).unwrap();
        jm.begin_suspend(JobId::new(0)).unwrap();
        jm.finish_suspend(JobId::new(0)).unwrap();
        // Job 0 now sits behind jobs 1 and 2 (round-robin behaviour).
        assert_eq!(jm.idle_jobs(), vec![JobId::new(1), JobId::new(2), JobId::new(0)]);
    }

    #[test]
    fn start_resume_distinction() {
        let mut jm = jm_with(1);
        let j = JobId::new(0);
        let m = MachineId::new(0);
        assert!(!jm.start_job(j, m).unwrap(), "first start is not a resume");
        jm.record_epoch(j).unwrap();
        jm.begin_suspend(j).unwrap();
        jm.finish_suspend(j).unwrap();
        assert!(jm.start_job(j, m).unwrap(), "second start is a resume");
        assert_eq!(jm.epochs_done(j).unwrap(), 1);
    }

    #[test]
    fn lifecycle_state_machine_is_enforced() {
        let mut jm = jm_with(2);
        let j = JobId::new(0);
        let m = MachineId::new(0);
        assert!(jm.begin_suspend(j).is_err(), "cannot suspend idle job");
        assert!(jm.record_epoch(j).is_err(), "cannot record epoch while idle");
        jm.start_job(j, m).unwrap();
        assert!(jm.start_job(j, m).is_err(), "cannot start running job");
        jm.complete_job(j).unwrap();
        assert!(jm.terminate_job(j).is_err(), "cannot terminate completed job");
        assert!(matches!(jm.state(j), Ok(JobState::Completed)));
    }

    #[test]
    fn terminate_returns_held_machine() {
        let mut jm = jm_with(1);
        let j = JobId::new(0);
        let m = MachineId::new(3);
        jm.start_job(j, m).unwrap();
        assert_eq!(jm.terminate_job(j).unwrap(), Some(m));
    }

    #[test]
    fn terminate_idle_returns_no_machine() {
        let mut jm = jm_with(1);
        assert_eq!(jm.terminate_job(JobId::new(0)).unwrap(), None);
    }

    #[test]
    fn active_jobs_excludes_finished() {
        let mut jm = jm_with(3);
        jm.start_job(JobId::new(0), MachineId::new(0)).unwrap();
        jm.complete_job(JobId::new(0)).unwrap();
        jm.terminate_job(JobId::new(1)).unwrap();
        assert_eq!(jm.active_jobs(), vec![JobId::new(2)]);
    }

    #[test]
    fn unknown_job_errors() {
        let mut jm = JobManager::new();
        assert!(matches!(jm.state(JobId::new(5)), Err(Error::UnknownJob(5))));
        assert!(jm.label_job(JobId::new(5), 1.0).is_err());
    }

    #[test]
    fn nan_priority_rejected() {
        let mut jm = jm_with(1);
        assert!(jm.label_job(JobId::new(0), f64::NAN).is_err());
    }

    #[test]
    fn interrupt_rolls_back_and_requeues() {
        let mut jm = jm_with(2);
        let j = JobId::new(0);
        let m = MachineId::new(0);
        jm.start_job(j, m).unwrap();
        for _ in 0..5 {
            jm.record_epoch(j).unwrap();
        }
        // Crash with a snapshot at epoch 3: roll back, resume later.
        assert_eq!(jm.interrupt_job(j, 3, true).unwrap(), m);
        assert_eq!(jm.state(j).unwrap(), JobState::Idle);
        assert_eq!(jm.epochs_done(j).unwrap(), 3);
        // Re-queued behind job 1 (fresh arrival).
        assert_eq!(jm.idle_jobs(), vec![JobId::new(1), j]);
        assert!(jm.start_job(j, m).unwrap(), "restart from snapshot is a resume");
    }

    #[test]
    fn interrupt_without_snapshot_is_fresh_start() {
        let mut jm = jm_with(1);
        let j = JobId::new(0);
        let m = MachineId::new(0);
        jm.start_job(j, m).unwrap();
        jm.record_epoch(j).unwrap();
        jm.interrupt_job(j, 0, false).unwrap();
        assert_eq!(jm.epochs_done(j).unwrap(), 0);
        assert!(!jm.start_job(j, m).unwrap(), "no snapshot: restart is fresh");
    }

    #[test]
    fn interrupt_requires_live_state() {
        let mut jm = jm_with(1);
        let j = JobId::new(0);
        assert!(jm.interrupt_job(j, 0, false).is_err(), "cannot interrupt idle job");
        jm.start_job(j, MachineId::new(0)).unwrap();
        jm.begin_suspend(j).unwrap();
        assert!(jm.interrupt_job(j, 0, false).is_ok(), "suspending jobs interrupt");
    }

    #[test]
    fn failed_jobs_leave_the_pool() {
        let mut jm = jm_with(2);
        let j = JobId::new(0);
        let m = MachineId::new(0);
        jm.start_job(j, m).unwrap();
        assert_eq!(jm.fail_job(j).unwrap(), Some(m));
        assert_eq!(jm.state(j).unwrap(), JobState::Failed);
        assert!(jm.fail_job(j).is_err(), "double fail rejected");
        assert!(jm.terminate_job(j).is_err(), "terminate after fail rejected");
        assert_eq!(jm.active_jobs(), vec![JobId::new(1)]);
        assert!(!jm.idle_jobs().contains(&j));
    }

    /// Exhaustively checks the maintained listing indexes against a
    /// from-scratch recomputation over the entries.
    fn assert_indexes_consistent(jm: &JobManager) {
        let mut idle: Vec<JobId> =
            jm.jobs.iter().filter(|(_, e)| e.state == JobState::Idle).map(|(id, _)| id).collect();
        idle.sort_by_key(|&a| jm.idle_key(a));
        assert_eq!(jm.idle_jobs(), idle, "idle index drifted");
        let mut running: Vec<JobId> = jm
            .jobs
            .iter()
            .filter(|(_, e)| matches!(e.state, JobState::Running(_)))
            .map(|(id, _)| id)
            .collect();
        running.sort_unstable();
        assert_eq!(jm.running_jobs(), running, "running index drifted");
        let mut active: Vec<JobId> = jm
            .jobs
            .iter()
            .filter(|(_, e)| {
                matches!(e.state, JobState::Running(_) | JobState::Suspending(_) | JobState::Idle)
            })
            .map(|(id, _)| id)
            .collect();
        active.sort_unstable();
        assert_eq!(jm.active_jobs(), active, "active index drifted");
    }

    #[test]
    fn listing_indexes_survive_every_transition() {
        let mut jm = jm_with(6);
        let m = MachineId::new(0);
        assert_indexes_consistent(&jm);
        jm.label_job(JobId::new(4), 0.8).unwrap();
        assert_indexes_consistent(&jm);
        jm.start_job(JobId::new(4), m).unwrap();
        assert_indexes_consistent(&jm);
        jm.begin_suspend(JobId::new(4)).unwrap();
        assert_indexes_consistent(&jm);
        jm.finish_suspend(JobId::new(4)).unwrap();
        assert_indexes_consistent(&jm);
        jm.start_job(JobId::new(0), MachineId::new(1)).unwrap();
        jm.record_epoch(JobId::new(0)).unwrap();
        jm.complete_job(JobId::new(0)).unwrap();
        assert_indexes_consistent(&jm);
        jm.start_job(JobId::new(1), MachineId::new(2)).unwrap();
        jm.interrupt_job(JobId::new(1), 0, false).unwrap();
        assert_indexes_consistent(&jm);
        jm.terminate_job(JobId::new(2)).unwrap();
        assert_indexes_consistent(&jm);
        jm.start_job(JobId::new(3), MachineId::new(3)).unwrap();
        jm.fail_job(JobId::new(3)).unwrap();
        assert_indexes_consistent(&jm);
        // Relabeling while running must not touch the idle queue; the new
        // priority applies once the job re-queues.
        jm.start_job(JobId::new(5), MachineId::new(4)).unwrap();
        jm.label_job(JobId::new(5), 0.9).unwrap();
        assert_indexes_consistent(&jm);
        jm.begin_suspend(JobId::new(5)).unwrap();
        jm.finish_suspend(JobId::new(5)).unwrap();
        assert_indexes_consistent(&jm);
        assert_eq!(jm.peek_idle_job(), Some(JobId::new(5)), "highest priority leads the queue");
    }

    #[test]
    fn reset_epochs_requires_running() {
        let mut jm = jm_with(1);
        let j = JobId::new(0);
        assert!(jm.reset_epochs(j, 0).is_err());
        jm.start_job(j, MachineId::new(0)).unwrap();
        jm.record_epoch(j).unwrap();
        jm.reset_epochs(j, 0).unwrap();
        assert_eq!(jm.epochs_done(j).unwrap(), 0);
    }
}
