//! The AppStat database.
//!
//! §4.2: "The application statistics database (AppStatDB) is used to store
//! and retrieve model-generated application statistics such as performance
//! stats (e.g., accuracy, reward), epoch duration, etc. In addition the
//! AppStatDB stores model state used to enable suspend and resume training
//! across machines."

use crate::dense::DenseMap;

use hyperdrive_types::{JobId, LearningCurve, MetricKind, SimTime};
use hyperdrive_workload::SuspendCost;

/// A suspend event as observed by the scheduler (for the §6.2.3 / Fig. 10
/// overhead studies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuspendEvent {
    /// The suspended job.
    pub job: JobId,
    /// When the suspend request was issued.
    pub requested_at: SimTime,
    /// Sampled latency and snapshot size.
    pub cost: SuspendCost,
}

/// Stores per-job performance history, model snapshots, and suspend-event
/// telemetry.
#[derive(Debug)]
pub struct AppStatDb {
    metric: MetricKind,
    curves: DenseMap<LearningCurve>,
    /// Secondary-metric history per job (§9: "additional metrics of
    /// concern", e.g. sparsity alongside perplexity).
    secondary_curves: DenseMap<LearningCurve>,
    /// Latest stored snapshot per job (bytes are synthetic but really
    /// allocated, so storage cost is honest).
    snapshots: DenseMap<Vec<u8>>,
    suspend_events: Vec<SuspendEvent>,
    /// Capacity hint for newly created curves (the workload's epoch cap),
    /// so per-epoch recording never reallocates in steady state.
    epochs_hint: usize,
}

impl AppStatDb {
    /// Creates an empty database for the given metric kind.
    pub fn new(metric: MetricKind) -> Self {
        Self::with_capacity(metric, 0, 0)
    }

    /// Creates an empty database pre-sized for `jobs` jobs of up to
    /// `max_epochs` observations each: the per-job curve maps and every
    /// curve they hold are allocated once, so steady-state recording is
    /// allocation-free.
    pub fn with_capacity(metric: MetricKind, jobs: usize, max_epochs: usize) -> Self {
        AppStatDb {
            metric,
            curves: DenseMap::with_capacity(jobs),
            secondary_curves: DenseMap::with_capacity(jobs),
            snapshots: DenseMap::with_capacity(jobs),
            suspend_events: Vec::new(),
            epochs_hint: max_epochs,
        }
    }

    /// Records one performance observation for a job.
    pub fn record_stat(&mut self, job: JobId, epoch: u32, time: SimTime, value: f64) {
        self.curves
            .or_insert_with(job, || LearningCurve::with_capacity(self.metric, self.epochs_hint))
            .push(epoch, time, value);
    }

    /// Records one secondary-metric observation for a job.
    pub fn record_secondary(&mut self, job: JobId, epoch: u32, time: SimTime, value: f64) {
        self.secondary_curves
            .or_insert_with(job, || LearningCurve::with_capacity(self.metric, self.epochs_hint))
            .push(epoch, time, value);
    }

    /// Borrowed view of a job's secondary-metric history, if any.
    pub fn secondary_curve_ref(&self, job: JobId) -> Option<&LearningCurve> {
        self.secondary_curves.get(job)
    }

    /// The observed learning curve of a job (empty curve if none yet).
    pub fn curve(&self, job: JobId) -> LearningCurve {
        self.curves.get(job).cloned().unwrap_or_else(|| LearningCurve::new(self.metric))
    }

    /// Borrowed view of a job's curve, if any observation exists.
    pub fn curve_ref(&self, job: JobId) -> Option<&LearningCurve> {
        self.curves.get(job)
    }

    /// Stores a model snapshot for later resume, returning the previous
    /// snapshot's size if one existed.
    pub fn store_snapshot(&mut self, job: JobId, state: Vec<u8>) -> Option<usize> {
        self.snapshots.insert(job, state).map(|old| old.len())
    }

    /// The stored snapshot for a job.
    pub fn snapshot(&self, job: JobId) -> Option<&[u8]> {
        self.snapshots.get(job).map(Vec::as_slice)
    }

    /// Rolls a job's recorded history back to `keep_epoch` (crash
    /// recovery: re-run epochs are re-recorded, so the curve must not
    /// already contain them). Affects primary and secondary curves; the
    /// stored snapshot is left alone — it is exactly what the job resumes
    /// from.
    pub fn truncate_stats(&mut self, job: JobId, keep_epoch: u32) {
        if let Some(curve) = self.curves.get_mut(job) {
            curve.truncate_to_epoch(keep_epoch);
        }
        if let Some(curve) = self.secondary_curves.get_mut(job) {
            curve.truncate_to_epoch(keep_epoch);
        }
    }

    /// Records a completed suspend event.
    pub fn record_suspend(&mut self, event: SuspendEvent) {
        self.suspend_events.push(event);
    }

    /// All recorded suspend events.
    pub fn suspend_events(&self) -> &[SuspendEvent] {
        &self.suspend_events
    }

    /// Total bytes currently held in snapshot storage.
    pub fn snapshot_storage_bytes(&self) -> usize {
        self.snapshots.values().map(Vec::len).sum()
    }

    /// Best observed value across all jobs (the `globalBest` that Bandit
    /// tracks), with the owning job.
    pub fn global_best(&self) -> Option<(JobId, f64)> {
        self.curves
            .iter()
            .filter_map(|(id, c)| c.best().map(|b| (id, b)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("curve values are not NaN"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> AppStatDb {
        AppStatDb::new(MetricKind::Accuracy)
    }

    #[test]
    fn stats_accumulate_into_curves() {
        let mut db = db();
        let j = JobId::new(1);
        db.record_stat(j, 1, SimTime::from_secs(60.0), 0.2);
        db.record_stat(j, 2, SimTime::from_secs(120.0), 0.4);
        let curve = db.curve(j);
        assert_eq!(curve.len(), 2);
        assert_eq!(curve.best(), Some(0.4));
        assert!(db.curve(JobId::new(9)).is_empty());
    }

    #[test]
    fn secondary_stats_are_separate() {
        let mut db = db();
        let j = JobId::new(4);
        db.record_stat(j, 1, SimTime::from_secs(1.0), 0.5);
        db.record_secondary(j, 1, SimTime::from_secs(1.0), 0.05);
        assert_eq!(db.curve(j).len(), 1);
        assert_eq!(db.secondary_curve_ref(j).unwrap().last_value(), Some(0.05));
        assert!(db.secondary_curve_ref(JobId::new(9)).is_none());
    }

    #[test]
    fn snapshots_round_trip() {
        let mut db = db();
        let j = JobId::new(2);
        assert!(db.snapshot(j).is_none());
        assert!(db.store_snapshot(j, vec![1, 2, 3]).is_none());
        assert_eq!(db.snapshot(j), Some(&[1u8, 2, 3][..]));
        assert_eq!(db.store_snapshot(j, vec![9; 10]), Some(3));
        assert_eq!(db.snapshot_storage_bytes(), 10);
    }

    #[test]
    fn global_best_across_jobs() {
        let mut db = db();
        db.record_stat(JobId::new(1), 1, SimTime::from_secs(1.0), 0.3);
        db.record_stat(JobId::new(2), 1, SimTime::from_secs(1.0), 0.7);
        db.record_stat(JobId::new(2), 2, SimTime::from_secs(2.0), 0.5);
        assert_eq!(db.global_best(), Some((JobId::new(2), 0.7)));
        assert_eq!(AppStatDb::new(MetricKind::Reward).global_best(), None);
    }

    #[test]
    fn truncate_stats_rolls_back_both_curves() {
        let mut db = db();
        let j = JobId::new(3);
        for e in 1..=4 {
            let t = SimTime::from_secs(f64::from(e) * 10.0);
            db.record_stat(j, e, t, 0.1 * f64::from(e));
            db.record_secondary(j, e, t, 0.01 * f64::from(e));
        }
        db.truncate_stats(j, 2);
        assert_eq!(db.curve(j).last_epoch(), Some(2));
        assert_eq!(db.secondary_curve_ref(j).unwrap().last_epoch(), Some(2));
        // Re-running epoch 3 records cleanly.
        db.record_stat(j, 3, SimTime::from_secs(99.0), 0.9);
        assert_eq!(db.curve(j).last_epoch(), Some(3));
        // Truncating a job with no history is a no-op.
        db.truncate_stats(JobId::new(9), 0);
    }

    #[test]
    fn suspend_events_are_logged() {
        let mut db = db();
        let cost = SuspendCost { latency: SimTime::from_secs(0.2), snapshot_bytes: 1024 };
        db.record_suspend(SuspendEvent {
            job: JobId::new(1),
            requested_at: SimTime::from_secs(100.0),
            cost,
        });
        assert_eq!(db.suspend_events().len(), 1);
        assert_eq!(db.suspend_events()[0].cost.snapshot_bytes, 1024);
    }
}
