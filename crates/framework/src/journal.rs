//! Write-ahead experiment journal: crash-consistent runs.
//!
//! The engine is a deterministic fold over its inputs: given the same
//! policy, workload, spec, and fault plan, the same sequence of
//! [`start`](crate::ExperimentEngine::start) /
//! [`handle`](crate::ExperimentEngine::handle) / fault injections produces
//! bit-identical commands, events, and results. The journal exploits that:
//! it records every *input* (plus verification digests of every *output*)
//! in an append-only, checksummed, per-run log, so a run killed at any
//! point can be recovered by replaying the logged inputs through a fresh
//! engine — and the completed trace is byte-identical to an uninterrupted
//! run.
//!
//! # Record schema
//!
//! The file starts with a 16-byte header — 4-byte magic `HDWJ`, a `u32`
//! format version, and a `u64` run fingerprint (see [`run_meta`]) — and
//! continues with self-delimiting frames `[kind u8][len u32][body][checksum
//! u64]` (checksum covers kind, length, and body). Record kinds:
//!
//! | kind | record          | role |
//! |------|-----------------|------|
//! | 1    | `Start`         | input: the initial `AllocateJobs` up-call |
//! | 2    | `Event`         | input: a completion fed to `handle` |
//! | 3    | `MachineCrash`  | input: injected crash |
//! | 4    | `MachineRecover`| input: injected recovery |
//! | 5    | `AgentStall`    | input: injected stall detection |
//! | 6    | `Transition`    | verification: one scheduler-log event |
//! | 7    | `Commands`      | verification: count + digest of a batch |
//! | 8    | `RngCheckpoint` | verification: RNG stream positions |
//! | 9    | `Seal`          | the run ended (cleanly or via SIGTERM) |
//!
//! Inputs are journaled *before* they are applied (write-ahead), including
//! no-op inputs such as stale-token completions, so every journal position
//! corresponds 1:1 to an executor delivery. Commands themselves are not
//! stored — replay regenerates them — but their digests, the transition
//! records, and the RNG checkpoints let recovery detect the slightest
//! divergence (changed binary, non-deterministic policy, wrong parameters)
//! as a typed error instead of silently corrupting the resumed run.
//!
//! # Corrupt-tail policy
//!
//! Mirrors the fit cache (PR 5): a final record cut short by the crash is
//! truncated and replayed past, never served; a *complete* record with a
//! bad checksum, or an impossible kind/length, is mid-log damage and
//! surfaces as [`Error::JournalCorrupt`]. A header torn below 16 bytes
//! means nothing was durable: recovery starts a fresh journal.
//!
//! Journaling is pure output: with the journal enabled the engine behaves
//! byte-identically to a journal-off run (enforced by CI, which runs the
//! whole golden-trace suite under `HYPERDRIVE_JOURNAL=on`).

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use hyperdrive_types::{Error, JobId, MachineId, Result, SimTime};

use crate::engine::{Command, EngineEvent};
use crate::events::SchedulerEvent;
use crate::experiment::{ExperimentSpec, ExperimentWorkload};
use crate::fault::{FaultKind, FaultPlan};

/// First 4 bytes of every journal file.
pub const JOURNAL_MAGIC: [u8; 4] = *b"HDWJ";
/// Format version this build reads and writes.
pub const JOURNAL_FORMAT: u32 = 1;

const HEADER_LEN: usize = 16;
/// Upper bound on a record body; anything larger is corruption (real
/// frames are under 64 bytes).
const MAX_RECORD: u32 = 1 << 20;

const K_START: u8 = 1;
const K_EVENT: u8 = 2;
const K_CRASH: u8 = 3;
const K_RECOVER: u8 = 4;
const K_STALL: u8 = 5;
const K_TRANSITION: u8 = 6;
const K_COMMANDS: u8 = 7;
const K_RNG: u8 = 8;
const K_SEAL: u8 = 9;

fn kind_name(kind: u8) -> &'static str {
    match kind {
        K_START => "start",
        K_EVENT => "event",
        K_CRASH => "machine-crash",
        K_RECOVER => "machine-recover",
        K_STALL => "agent-stall",
        K_TRANSITION => "transition",
        K_COMMANDS => "commands",
        K_RNG => "rng-checkpoint",
        K_SEAL => "seal",
        _ => "unknown",
    }
}

fn is_input_kind(kind: u8) -> bool {
    (K_START..=K_STALL).contains(&kind)
}

/// SplitMix64 finalizer (same constants as the fit cache's fingerprint
/// hasher): a cheap, high-quality 64-bit mixer.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Two-lane incremental hasher over `u64` words, following the fit cache's
/// fingerprint construction. Self-contained so the journal format cannot
/// drift when the cache evolves.
struct Hash2 {
    a: u64,
    b: u64,
}

impl Hash2 {
    fn new(salt: u64) -> Self {
        Hash2 { a: mix64(salt ^ 0x243F_6A88_85A3_08D3), b: mix64(salt ^ 0x1319_8A2E_0370_7344) }
    }

    fn write_u64(&mut self, v: u64) {
        self.a = mix64(self.a ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.b = self.b.rotate_left(29) ^ mix64(v ^ 0xC2B2_AE3D_27D4_EB4F);
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    fn finish(&self) -> u64 {
        mix64(self.a ^ self.b.rotate_left(17))
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn frame_checksum(head: &[u8]) -> u64 {
    let mut h = Hash2::new(0x8536_42F5_4679_1D4B ^ u64::from(JOURNAL_FORMAT));
    h.write_bytes(head);
    h.finish()
}

/// Builds one self-delimiting frame: `[kind][len][body][checksum]`.
fn encode_frame(kind: u8, body: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(5 + body.len() + 8);
    frame.push(kind);
    put_u32(&mut frame, body.len() as u32);
    frame.extend_from_slice(body);
    let sum = frame_checksum(&frame);
    put_u64(&mut frame, sum);
    frame
}

/// Order-sensitive digest of a command batch, journaled instead of the
/// commands themselves (replay regenerates them and verifies the digest).
pub(crate) fn command_digest(cmds: &[Command]) -> u64 {
    let mut h = Hash2::new(0x5E0C_0DD1_6E57_0001);
    h.write_u64(cmds.len() as u64);
    for c in cmds {
        match *c {
            Command::RunEpoch { job, machine, epoch, duration, token } => {
                h.write_u64(1);
                h.write_u64(job.raw());
                h.write_u64(machine.raw());
                h.write_u64(u64::from(epoch));
                h.write_u64(duration.as_secs().to_bits());
                h.write_u64(token);
            }
            Command::Suspend { job, machine, latency, token } => {
                h.write_u64(2);
                h.write_u64(job.raw());
                h.write_u64(machine.raw());
                h.write_u64(latency.as_secs().to_bits());
                h.write_u64(token);
            }
            Command::Stop => h.write_u64(3),
        }
    }
    h.finish()
}

/// Fingerprint of everything that must match between the run that wrote a
/// journal and the run that recovers it: policy name, workload identity,
/// spec, and fault plan. Recovery with a different fingerprint is a typed
/// [`Error::JournalMismatch`], not silent divergence.
pub fn run_meta(
    policy_name: &str,
    workload: &ExperimentWorkload,
    spec: &ExperimentSpec,
    plan: &FaultPlan,
) -> u64 {
    let mut h = Hash2::new(0x4A0F_11E7_D217_AC3D);
    h.write_str(policy_name);
    h.write_str(&workload.name);
    h.write_u64(workload.jobs.len() as u64);
    h.write_u64(u64::from(workload.max_epochs));
    h.write_u64(u64::from(workload.eval_boundary));
    h.write_u64(workload.target.to_bits());
    h.write_u64(spec.machines as u64);
    h.write_u64(spec.tmax.as_secs().to_bits());
    h.write_u64(u64::from(spec.stop_on_target));
    h.write_u64(spec.dynamic_target_increment.map_or(u64::MAX, f64::to_bits));
    h.write_u64(spec.seed);
    h.write_u64(plan.seed);
    h.write_u64(plan.suspend_fail_prob.to_bits());
    h.write_u64(plan.snapshot_corrupt_prob.to_bits());
    h.write_u64(u64::from(plan.retry.max_retries));
    h.write_u64(plan.retry.backoff.as_secs().to_bits());
    h.write_u64(plan.retry.backoff_factor.to_bits());
    h.write_u64(plan.events.len() as u64);
    for e in &plan.events {
        h.write_u64(e.at.as_secs().to_bits());
        h.write_u64(e.machine.raw());
        let (tag, extra) = match e.kind {
            FaultKind::MachineCrash => (0u64, 0u64),
            FaultKind::MachineRecover => (1, 0),
            FaultKind::AgentStall { detection } => (2, detection.as_secs().to_bits()),
            FaultKind::ReplyDelay { delay } => (3, delay.as_secs().to_bits()),
            FaultKind::EngineCrash { at_event } => (4, at_event),
        };
        h.write_u64(tag);
        h.write_u64(extra);
    }
    h.finish()
}

/// One journaled engine input, decoded for replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayInput {
    /// The initial `start()` call.
    Start,
    /// A completion fed to `handle(event, now)`.
    Event {
        /// The completion.
        event: EngineEvent,
        /// Delivery time.
        now: SimTime,
    },
    /// An injected machine crash.
    MachineCrash {
        /// Crashed machine.
        machine: MachineId,
        /// Injection time.
        now: SimTime,
    },
    /// An injected machine recovery.
    MachineRecovery {
        /// Recovered machine.
        machine: MachineId,
        /// Injection time.
        now: SimTime,
    },
    /// An injected agent-stall detection.
    AgentStall {
        /// Stalled machine.
        machine: MachineId,
        /// Detection time.
        now: SimTime,
    },
}

impl ReplayInput {
    /// The executor time at which the input was delivered (`None` for
    /// [`Start`](ReplayInput::Start), which is always at time zero).
    pub fn now(&self) -> Option<SimTime> {
        match self {
            ReplayInput::Start => None,
            ReplayInput::Event { now, .. }
            | ReplayInput::MachineCrash { now, .. }
            | ReplayInput::MachineRecovery { now, .. }
            | ReplayInput::AgentStall { now, .. } => Some(*now),
        }
    }
}

/// A journal opened for recovery: the handle (in replay-verify mode), the
/// decoded inputs to feed back through the engine, and whether the run had
/// already sealed (ended) when it was interrupted.
#[derive(Debug)]
pub struct RecoveredJournal {
    /// The journal, positioned to verify the recovered prefix and then
    /// append.
    pub journal: Journal,
    /// Engine inputs in original order.
    pub inputs: Vec<ReplayInput>,
    /// True if the journal ended with a `Seal` record (clean end or
    /// SIGTERM). The seal is stripped so a resumed run re-seals at its own
    /// end.
    pub sealed: bool,
}

#[derive(Debug)]
enum Sink {
    Mem(Vec<Vec<u8>>),
    Disk(File),
}

#[derive(Debug)]
struct State {
    sink: Sink,
    /// Frames still to verify (replay mode). Empty in plain append mode.
    replay: VecDeque<Vec<u8>>,
    /// Records verified against the replay prefix so far.
    replayed: u64,
    /// Input records appended (verified or written) — the crash-position
    /// coordinate used by the kill-anywhere harness.
    inputs: u64,
    records: u64,
    /// First replay mismatch, sticky. Checked once after replay completes
    /// so engine entry points stay infallible.
    divergence: Option<Error>,
    sealed: bool,
    /// Set when a disk write fails mid-run: journaling stops (with a
    /// warning) rather than killing the experiment.
    dead: bool,
}

#[derive(Debug)]
struct Inner {
    meta: u64,
    path: Option<PathBuf>,
    state: Mutex<State>,
}

/// Handle to a per-run write-ahead journal. Cheap to clone (`Arc`-shared);
/// a disabled handle ([`Journal::disabled`]) makes every operation a no-op
/// so the engine carries one unconditionally.
#[derive(Debug, Clone)]
pub struct Journal {
    inner: Option<Arc<Inner>>,
}

impl Journal {
    /// A no-op journal: nothing is recorded.
    pub fn disabled() -> Journal {
        Journal { inner: None }
    }

    /// An in-memory journal (no disk I/O). Supports
    /// [`reopen`](Journal::reopen) for in-process crash/recovery tests.
    pub fn in_memory(meta: u64) -> Journal {
        Journal {
            inner: Some(Arc::new(Inner {
                meta,
                path: None,
                state: Mutex::new(State {
                    sink: Sink::Mem(Vec::new()),
                    replay: VecDeque::new(),
                    replayed: 0,
                    inputs: 0,
                    records: 0,
                    divergence: None,
                    sealed: false,
                    dead: false,
                }),
            })),
        }
    }

    /// Creates (or truncates) a journal file for a fresh run.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the parent directory cannot be created or
    /// the file cannot be opened/written.
    pub fn create(path: &Path, meta: u64) -> Result<Journal> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| {
                    Error::Io(format!("create journal directory {}: {e}", parent.display()))
                })?;
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| Error::Io(format!("create journal {}: {e}", path.display())))?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&JOURNAL_MAGIC);
        put_u32(&mut header, JOURNAL_FORMAT);
        put_u64(&mut header, meta);
        file.write_all(&header)
            .and_then(|()| file.flush())
            .map_err(|e| Error::Io(format!("write journal header {}: {e}", path.display())))?;
        Ok(Journal {
            inner: Some(Arc::new(Inner {
                meta,
                path: Some(path.to_path_buf()),
                state: Mutex::new(State {
                    sink: Sink::Disk(file),
                    replay: VecDeque::new(),
                    replayed: 0,
                    inputs: 0,
                    records: 0,
                    divergence: None,
                    sealed: false,
                    dead: false,
                }),
            })),
        })
    }

    /// Attaches a journal according to `HYPERDRIVE_JOURNAL` /
    /// `HYPERDRIVE_JOURNAL_DIR` (default: off; default dir
    /// `$HYPERDRIVE_RESULTS/journal` or `results/journal`). A directory or
    /// file that cannot be created disables journaling with a warning
    /// rather than failing the run; use [`Journal::create`] directly for a
    /// typed error.
    pub fn from_env(meta: u64) -> Journal {
        let enabled = std::env::var("HYPERDRIVE_JOURNAL").is_ok_and(|v| {
            let v = v.trim().to_ascii_lowercase();
            !(v.is_empty() || v == "0" || v == "off" || v == "false")
        });
        if !enabled {
            return Journal::disabled();
        }
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = journal_dir().join(format!("run-{}-{n}.wal", std::process::id()));
        match Journal::create(&path, meta) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("hyperdrive: journal disabled: {e}");
                Journal::disabled()
            }
        }
    }

    /// Opens an existing journal for recovery: validates the header
    /// against `meta`, truncates a torn final record, strips a trailing
    /// seal, and returns the decoded inputs plus a handle positioned to
    /// verify the recovered prefix byte-for-byte during replay.
    ///
    /// # Errors
    ///
    /// * [`Error::Io`] — the file cannot be read or truncated.
    /// * [`Error::JournalMismatch`] — wrong magic or run fingerprint.
    /// * [`Error::JournalVersion`] — written by an incompatible format.
    /// * [`Error::JournalCorrupt`] — mid-log damage (a complete record
    ///   with a bad checksum or impossible kind/length).
    pub fn recover(path: &Path, meta: u64) -> Result<RecoveredJournal> {
        let bytes = std::fs::read(path)
            .map_err(|e| Error::Io(format!("read journal {}: {e}", path.display())))?;
        if bytes.len() < HEADER_LEN {
            // The header itself was torn: nothing was durably journaled.
            let journal = Journal::create(path, meta)?;
            return Ok(RecoveredJournal { journal, inputs: Vec::new(), sealed: false });
        }
        if bytes[..4] != JOURNAL_MAGIC {
            return Err(Error::JournalMismatch("bad magic (not a journal file)".into()));
        }
        let format = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if format != JOURNAL_FORMAT {
            return Err(Error::JournalVersion { found: format, expected: JOURNAL_FORMAT });
        }
        let file_meta = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        if file_meta != meta {
            return Err(Error::JournalMismatch(format!(
                "run fingerprint {file_meta:#018x} does not match expected {meta:#018x}"
            )));
        }
        let (frames, sealed, valid_len) = parse_frames(&bytes)?;
        let inputs = decode_inputs(&frames)?;
        if bytes.len() as u64 != valid_len {
            let f = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| Error::Io(format!("reopen journal {}: {e}", path.display())))?;
            f.set_len(valid_len)
                .map_err(|e| Error::Io(format!("truncate journal {}: {e}", path.display())))?;
        }
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| Error::Io(format!("reopen journal {}: {e}", path.display())))?;
        Ok(RecoveredJournal {
            journal: Journal {
                inner: Some(Arc::new(Inner {
                    meta,
                    path: Some(path.to_path_buf()),
                    state: Mutex::new(State {
                        sink: Sink::Disk(file),
                        replay: frames.into(),
                        replayed: 0,
                        inputs: 0,
                        records: 0,
                        divergence: None,
                        sealed: false,
                        dead: false,
                    }),
                })),
            },
            inputs,
            sealed,
        })
    }

    /// Recovers this journal in place: disk journals re-read their file;
    /// in-memory journals replay their accumulated frames. This is how the
    /// kill-anywhere harness "restarts the process" without leaving RAM.
    ///
    /// # Errors
    ///
    /// Same as [`Journal::recover`], plus [`Error::InvalidParameter`] for
    /// a disabled journal.
    pub fn reopen(&self) -> Result<RecoveredJournal> {
        let Some(inner) = &self.inner else {
            return Err(Error::InvalidParameter("cannot reopen a disabled journal".into()));
        };
        if let Some(path) = &inner.path {
            return Journal::recover(path, inner.meta);
        }
        let mut frames: Vec<Vec<u8>> = {
            let st = inner.state.lock();
            match &st.sink {
                Sink::Mem(v) => v.clone(),
                Sink::Disk(_) => unreachable!("disk journals always carry a path"),
            }
        };
        let sealed = frames.last().is_some_and(|f| f[0] == K_SEAL);
        if sealed {
            frames.pop();
        }
        let inputs = decode_inputs(&frames)?;
        Ok(RecoveredJournal {
            journal: Journal {
                inner: Some(Arc::new(Inner {
                    meta: inner.meta,
                    path: None,
                    state: Mutex::new(State {
                        sink: Sink::Mem(frames.clone()),
                        replay: frames.into(),
                        replayed: 0,
                        inputs: 0,
                        records: 0,
                        divergence: None,
                        sealed: false,
                        dead: false,
                    }),
                })),
            },
            inputs,
            sealed,
        })
    }

    /// True if this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True once a `Seal` record was written (the run ended).
    pub fn is_sealed(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.state.lock().sealed)
    }

    /// Input records appended so far (verified during replay count too, so
    /// positions are global across crash/recover cycles).
    pub fn inputs_appended(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.state.lock().inputs)
    }

    /// Total records appended so far.
    pub fn records_appended(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.state.lock().records)
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<PathBuf> {
        self.inner.as_ref().and_then(|i| i.path.clone())
    }

    /// Takes the sticky replay-divergence error, if any. Engine recovery
    /// checks this once after feeding back all journaled inputs.
    pub fn take_divergence(&self) -> Option<Error> {
        self.inner.as_ref().and_then(|i| i.state.lock().divergence.take())
    }

    /// Frames left to verify before the journal switches back to
    /// appending (zero outside recovery).
    pub fn replay_remaining(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.state.lock().replay.len())
    }

    fn append(&self, kind: u8, body: &[u8]) {
        let Some(inner) = &self.inner else { return };
        let frame = encode_frame(kind, body);
        let mut st = inner.state.lock();
        if st.sealed {
            return;
        }
        if let Some(expected) = st.replay.pop_front() {
            let record = st.replayed;
            st.replayed += 1;
            if expected != frame && st.divergence.is_none() {
                st.divergence = Some(Error::JournalDiverged {
                    record,
                    detail: format!(
                        "replay regenerated a {} record that differs from the journal \
                         (journaled kind: {})",
                        kind_name(kind),
                        kind_name(expected.first().copied().unwrap_or(0)),
                    ),
                });
            }
        } else if !st.dead {
            match &mut st.sink {
                Sink::Mem(v) => v.push(frame),
                Sink::Disk(f) => {
                    // One write_all + flush per record: a crash tears at
                    // most the final frame, which recovery truncates.
                    if f.write_all(&frame).and_then(|()| f.flush()).is_err() {
                        st.dead = true;
                        eprintln!(
                            "hyperdrive: journal write failed; journaling disabled for this run"
                        );
                    }
                }
            }
        }
        st.records += 1;
        if is_input_kind(kind) {
            st.inputs += 1;
        }
    }

    pub(crate) fn input_start(&self) {
        self.append(K_START, &[]);
    }

    pub(crate) fn input_event(&self, event: EngineEvent, now: SimTime) {
        if self.inner.is_none() {
            return;
        }
        let mut body = Vec::with_capacity(25);
        let (tag, job, token) = match event {
            EngineEvent::EpochDone { job, token } => (0u8, job, token),
            EngineEvent::SuspendDone { job, token } => (1, job, token),
        };
        body.push(tag);
        put_u64(&mut body, job.raw());
        put_u64(&mut body, token);
        put_f64(&mut body, now.as_secs());
        self.append(K_EVENT, &body);
    }

    fn input_machine(&self, kind: u8, machine: MachineId, now: SimTime) {
        if self.inner.is_none() {
            return;
        }
        let mut body = Vec::with_capacity(16);
        put_u64(&mut body, machine.raw());
        put_f64(&mut body, now.as_secs());
        self.append(kind, &body);
    }

    pub(crate) fn input_machine_crash(&self, machine: MachineId, now: SimTime) {
        self.input_machine(K_CRASH, machine, now);
    }

    pub(crate) fn input_machine_recovery(&self, machine: MachineId, now: SimTime) {
        self.input_machine(K_RECOVER, machine, now);
    }

    pub(crate) fn input_agent_stall(&self, machine: MachineId, now: SimTime) {
        self.input_machine(K_STALL, machine, now);
    }

    pub(crate) fn transition(&self, ev: &SchedulerEvent) {
        if self.inner.is_none() {
            return;
        }
        const NONE: u64 = u64::MAX;
        let mut body = Vec::with_capacity(33);
        let (tag, job, machine, time, extra) = match *ev {
            SchedulerEvent::Started { job, machine, time, resumed } => {
                (0u8, job.raw(), machine.raw(), time, u64::from(resumed))
            }
            SchedulerEvent::Suspended { job, machine, time } => {
                (1, job.raw(), machine.raw(), time, 0)
            }
            SchedulerEvent::Terminated { job, machine, time } => {
                (2, job.raw(), machine.raw(), time, 0)
            }
            SchedulerEvent::Completed { job, machine, time } => {
                (3, job.raw(), machine.raw(), time, 0)
            }
            SchedulerEvent::TargetReached { job, target, time } => {
                (4, job.raw(), NONE, time, target.to_bits())
            }
            SchedulerEvent::MachineCrashed { machine, time } => (5, NONE, machine.raw(), time, 0),
            SchedulerEvent::MachineRecovered { machine, time } => (6, NONE, machine.raw(), time, 0),
            SchedulerEvent::Interrupted { job, machine, time, lost_epochs } => {
                (7, job.raw(), machine.raw(), time, u64::from(lost_epochs))
            }
            SchedulerEvent::SnapshotCorrupted { job, time } => (8, job.raw(), NONE, time, 0),
            SchedulerEvent::Failed { job, time } => (9, job.raw(), NONE, time, 0),
        };
        body.push(tag);
        put_u64(&mut body, job);
        put_u64(&mut body, machine);
        put_f64(&mut body, time.as_secs());
        put_u64(&mut body, extra);
        self.append(K_TRANSITION, &body);
    }

    pub(crate) fn commands(&self, cmds: &[Command]) {
        if self.inner.is_none() {
            return;
        }
        let mut body = Vec::with_capacity(12);
        put_u32(&mut body, cmds.len() as u32);
        put_u64(&mut body, command_digest(cmds));
        self.append(K_COMMANDS, &body);
    }

    pub(crate) fn rng_checkpoint(&self, rng_draws: u64, fault_rng_draws: u64) {
        if self.inner.is_none() {
            return;
        }
        let mut body = Vec::with_capacity(16);
        put_u64(&mut body, rng_draws);
        put_u64(&mut body, fault_rng_draws);
        self.append(K_RNG, &body);
    }

    /// Seals the journal: the run ended (`complete`) or was interrupted on
    /// purpose (SIGTERM drains with `complete = false`). Idempotent; no
    /// records are accepted afterwards.
    pub(crate) fn seal(&self, end_time: SimTime, complete: bool) {
        let Some(inner) = &self.inner else { return };
        let mut body = Vec::with_capacity(9);
        put_f64(&mut body, end_time.as_secs());
        body.push(u8::from(complete));
        let frame = encode_frame(K_SEAL, &body);
        let mut st = inner.state.lock();
        if st.sealed {
            return;
        }
        st.sealed = true;
        // A seal mid-replay means recovery is still verifying the prefix;
        // leftover frames surface as divergence, so skip the write.
        if !st.replay.is_empty() || st.dead {
            return;
        }
        match &mut st.sink {
            Sink::Mem(v) => v.push(frame),
            Sink::Disk(f) => {
                let _ = f.write_all(&frame).and_then(|()| f.flush());
            }
        }
        st.records += 1;
    }
}

/// Journal directory: `HYPERDRIVE_JOURNAL_DIR`, else
/// `$HYPERDRIVE_RESULTS/journal`, else `results/journal`.
fn journal_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("HYPERDRIVE_JOURNAL_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    let base = std::env::var("HYPERDRIVE_RESULTS").unwrap_or_else(|_| "results".into());
    PathBuf::from(base).join("journal")
}

/// Splits `bytes` (a full journal file) into frames. Returns the frames
/// with a trailing seal stripped, whether a seal was present, and the byte
/// length of the valid prefix (excluding the seal and any torn tail).
fn parse_frames(bytes: &[u8]) -> Result<(Vec<Vec<u8>>, bool, u64)> {
    let mut frames: Vec<Vec<u8>> = Vec::new();
    let mut pos = HEADER_LEN;
    let mut valid_len = HEADER_LEN as u64;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 5 {
            break; // torn: not even kind + length landed
        }
        let kind = bytes[pos];
        let len = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4 bytes"));
        if !(K_START..=K_SEAL).contains(&kind) || len > MAX_RECORD {
            return Err(Error::JournalCorrupt { offset: pos as u64 });
        }
        let total = 5 + len as usize + 8;
        if remaining < total {
            break; // torn: the final write was cut short
        }
        let head = &bytes[pos..pos + 5 + len as usize];
        let stored =
            u64::from_le_bytes(bytes[pos + 5 + len as usize..pos + total].try_into().expect("8"));
        if frame_checksum(head) != stored {
            return Err(Error::JournalCorrupt { offset: pos as u64 });
        }
        frames.push(bytes[pos..pos + total].to_vec());
        pos += total;
        valid_len = pos as u64;
    }
    let mut sealed = false;
    if let Some(last) = frames.last() {
        if last[0] == K_SEAL {
            sealed = true;
            let seal = frames.pop().expect("last exists");
            valid_len -= seal.len() as u64;
        }
    }
    Ok((frames, sealed, valid_len))
}

/// Decodes the input records out of a frame sequence (verification
/// records are skipped — replay regenerates and checks them).
fn decode_inputs(frames: &[Vec<u8>]) -> Result<Vec<ReplayInput>> {
    let mut inputs = Vec::new();
    for (i, frame) in frames.iter().enumerate() {
        let kind = frame[0];
        if !is_input_kind(kind) {
            continue;
        }
        let body = &frame[5..frame.len() - 8];
        let input = decode_input(kind, body).ok_or(Error::JournalCorrupt { offset: i as u64 })?;
        inputs.push(input);
    }
    Ok(inputs)
}

fn decode_input(kind: u8, body: &[u8]) -> Option<ReplayInput> {
    let mut c = Cursor { bytes: body, pos: 0 };
    let input = match kind {
        K_START => ReplayInput::Start,
        K_EVENT => {
            let tag = c.u8()?;
            let job = JobId::new(c.u64()?);
            let token = c.u64()?;
            let now = c.time()?;
            let event = match tag {
                0 => EngineEvent::EpochDone { job, token },
                1 => EngineEvent::SuspendDone { job, token },
                _ => return None,
            };
            ReplayInput::Event { event, now }
        }
        K_CRASH | K_RECOVER | K_STALL => {
            let machine = MachineId::new(c.u64()?);
            let now = c.time()?;
            match kind {
                K_CRASH => ReplayInput::MachineCrash { machine, now },
                K_RECOVER => ReplayInput::MachineRecovery { machine, now },
                _ => ReplayInput::AgentStall { machine, now },
            }
        }
        _ => return None,
    };
    if c.pos != body.len() {
        return None;
    }
    Some(input)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn time(&mut self) -> Option<SimTime> {
        let v = f64::from_bits(self.u64()?);
        if v.is_nan() {
            return None;
        }
        Some(SimTime::from_secs(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hyperdrive-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_inputs() -> Vec<ReplayInput> {
        vec![
            ReplayInput::Start,
            ReplayInput::Event {
                event: EngineEvent::EpochDone { job: JobId::new(0), token: 0 },
                now: SimTime::from_secs(10.0),
            },
            ReplayInput::MachineCrash { machine: MachineId::new(1), now: SimTime::from_secs(12.0) },
            ReplayInput::MachineRecovery {
                machine: MachineId::new(1),
                now: SimTime::from_secs(30.0),
            },
            ReplayInput::AgentStall { machine: MachineId::new(0), now: SimTime::from_secs(44.0) },
            ReplayInput::Event {
                event: EngineEvent::SuspendDone { job: JobId::new(2), token: 9 },
                now: SimTime::from_secs(50.0),
            },
        ]
    }

    fn append_input(j: &Journal, input: ReplayInput) {
        match input {
            ReplayInput::Start => j.input_start(),
            ReplayInput::Event { event, now } => j.input_event(event, now),
            ReplayInput::MachineCrash { machine, now } => j.input_machine_crash(machine, now),
            ReplayInput::MachineRecovery { machine, now } => j.input_machine_recovery(machine, now),
            ReplayInput::AgentStall { machine, now } => j.input_agent_stall(machine, now),
        }
    }

    fn write_sample(j: &Journal) {
        for input in sample_inputs() {
            append_input(j, input);
            j.transition(&SchedulerEvent::Started {
                job: JobId::new(0),
                machine: MachineId::new(0),
                time: SimTime::from_secs(1.0),
                resumed: false,
            });
            j.commands(&[Command::Stop]);
            j.rng_checkpoint(3, 1);
        }
    }

    #[test]
    fn disabled_journal_is_inert() {
        let j = Journal::disabled();
        assert!(!j.is_enabled());
        write_sample(&j);
        j.seal(SimTime::ZERO, true);
        assert_eq!(j.inputs_appended(), 0);
        assert_eq!(j.records_appended(), 0);
        assert!(!j.is_sealed());
        assert!(j.reopen().is_err());
    }

    #[test]
    fn disk_roundtrip_recovers_inputs_in_order() {
        let path = tmp_path("roundtrip.wal");
        let j = Journal::create(&path, 0xABCD).unwrap();
        write_sample(&j);
        assert_eq!(j.inputs_appended(), 6);
        drop(j);
        let rec = Journal::recover(&path, 0xABCD).unwrap();
        assert_eq!(rec.inputs, sample_inputs());
        assert!(!rec.sealed);
    }

    #[test]
    fn replay_verifies_identical_frames_and_flags_divergence() {
        let j = Journal::in_memory(7);
        write_sample(&j);
        let rec = j.reopen().unwrap();
        // Re-append the exact same records: every frame verifies.
        write_sample(&rec.journal);
        assert_eq!(rec.journal.replay_remaining(), 0);
        assert!(rec.journal.take_divergence().is_none());
        // Appending past the prefix goes to the sink again.
        rec.journal.rng_checkpoint(99, 0);
        assert_eq!(rec.journal.records_appended(), j.records_appended() + 1);

        // A differing record sets a sticky divergence error.
        let rec2 = j.reopen().unwrap();
        rec2.journal.input_start();
        rec2.journal.rng_checkpoint(1234, 5678); // journal holds a transition here
        match rec2.journal.take_divergence() {
            Some(Error::JournalDiverged { record, .. }) => assert_eq!(record, 1),
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn seal_is_idempotent_and_stripped_on_recovery() {
        let path = tmp_path("sealed.wal");
        let j = Journal::create(&path, 1).unwrap();
        write_sample(&j);
        j.seal(SimTime::from_secs(50.0), false);
        j.seal(SimTime::from_secs(99.0), true); // second seal ignored
        assert!(j.is_sealed());
        let before = std::fs::metadata(&path).unwrap().len();
        drop(j);
        let rec = Journal::recover(&path, 1).unwrap();
        assert!(rec.sealed, "seal observed");
        assert_eq!(rec.inputs, sample_inputs());
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < before, "seal record truncated so the resumed run re-seals");
    }

    #[test]
    fn records_after_seal_are_dropped() {
        let j = Journal::in_memory(3);
        j.input_start();
        j.seal(SimTime::ZERO, true);
        j.input_event(
            EngineEvent::EpochDone { job: JobId::new(0), token: 0 },
            SimTime::from_secs(1.0),
        );
        assert_eq!(j.inputs_appended(), 1, "post-seal input dropped");
    }

    #[test]
    fn torn_tail_is_truncated_and_replayed_past() {
        let path = tmp_path("torn.wal");
        let j = Journal::create(&path, 2).unwrap();
        write_sample(&j);
        drop(j);
        let full = std::fs::read(&path).unwrap();
        // Cut the file mid-way through the final record.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let rec = Journal::recover(&path, 2).unwrap();
        assert_eq!(rec.inputs, sample_inputs(), "all complete inputs survive");
        let truncated = std::fs::metadata(&path).unwrap().len();
        assert!(truncated < full.len() as u64, "torn record removed from disk");
    }

    #[test]
    fn torn_header_restarts_fresh() {
        let path = tmp_path("torn-header.wal");
        std::fs::write(&path, b"HDWJ\x01").unwrap();
        let rec = Journal::recover(&path, 5).unwrap();
        assert!(rec.inputs.is_empty());
        assert!(!rec.sealed);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), HEADER_LEN as u64);
    }

    #[test]
    fn mid_log_corruption_is_a_typed_error() {
        let path = tmp_path("corrupt.wal");
        let j = Journal::create(&path, 4).unwrap();
        write_sample(&j);
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the first record (offset 16 = header,
        // +5 = kind+len of the first frame).
        bytes[HEADER_LEN + 5] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match Journal::recover(&path, 4) {
            Err(Error::JournalCorrupt { offset }) => assert_eq!(offset, HEADER_LEN as u64),
            other => panic!("expected JournalCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn version_and_meta_mismatches_are_typed() {
        let path = tmp_path("version.wal");
        let j = Journal::create(&path, 6).unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 9; // format version 9
        std::fs::write(&path, &bytes).unwrap();
        match Journal::recover(&path, 6) {
            Err(Error::JournalVersion { found: 9, expected }) => {
                assert_eq!(expected, JOURNAL_FORMAT);
            }
            other => panic!("expected JournalVersion, got {other:?}"),
        }

        let path2 = tmp_path("meta.wal");
        Journal::create(&path2, 6).unwrap();
        assert!(matches!(Journal::recover(&path2, 7), Err(Error::JournalMismatch(_))));

        let path3 = tmp_path("magic.wal");
        std::fs::write(&path3, vec![0u8; 32]).unwrap();
        assert!(matches!(Journal::recover(&path3, 0), Err(Error::JournalMismatch(_))));
    }

    #[test]
    fn create_in_impossible_directory_is_a_typed_error() {
        // A path under a regular *file* cannot be created as a directory.
        let blocker = tmp_path("blocker-file");
        std::fs::write(&blocker, b"x").unwrap();
        let path = blocker.join("sub").join("j.wal");
        match Journal::create(&path, 0) {
            Err(Error::Io(msg)) => assert!(msg.contains("journal"), "{msg}"),
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn run_meta_distinguishes_runs() {
        use hyperdrive_workload::{CifarWorkload, Workload as _};
        let w = CifarWorkload::new().with_max_epochs(4);
        let ew = ExperimentWorkload::from_workload(&w, 3, 1);
        let spec = ExperimentSpec::new(2);
        let plan = FaultPlan::none();
        let a = run_meta("pop", &ew, &spec, &plan);
        assert_eq!(a, run_meta("pop", &ew, &spec, &plan), "deterministic");
        assert_ne!(a, run_meta("default", &ew, &spec, &plan), "policy name matters");
        assert_ne!(a, run_meta("pop", &ew, &spec.with_seed(9), &plan), "spec matters");
        let mut plan2 = FaultPlan::none();
        plan2.events.push(crate::fault::FaultEvent {
            at: SimTime::from_secs(1.0),
            machine: MachineId::new(0),
            kind: FaultKind::EngineCrash { at_event: 5 },
        });
        assert_ne!(a, run_meta("pop", &ew, &spec, &plan2), "plan matters");
        let _ = w.name(); // keep the Workload trait import exercised
    }

    #[test]
    fn command_digest_is_order_sensitive() {
        let a = Command::RunEpoch {
            job: JobId::new(0),
            machine: MachineId::new(0),
            epoch: 1,
            duration: SimTime::from_secs(5.0),
            token: 0,
        };
        let b = Command::Suspend {
            job: JobId::new(1),
            machine: MachineId::new(1),
            latency: SimTime::from_secs(2.0),
            token: 1,
        };
        assert_ne!(command_digest(&[a, b]), command_digest(&[b, a]));
        assert_ne!(command_digest(&[a]), command_digest(&[a, Command::Stop]));
        assert_eq!(command_digest(&[a, b]), command_digest(&[a, b]));
    }

    #[test]
    fn from_env_defaults_to_disabled() {
        // The test environment does not set HYPERDRIVE_JOURNAL for this
        // process's unit tests unless CI's journal pass is active; either
        // way the call must not fail.
        let j = Journal::from_env(0);
        if std::env::var("HYPERDRIVE_JOURNAL").map_or(true, |v| {
            let v = v.trim().to_ascii_lowercase();
            v.is_empty() || v == "0" || v == "off" || v == "false"
        }) {
            assert!(!j.is_enabled());
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Torn-tail corruption at *any* byte offset recovers the
            /// longest valid prefix: exactly the records whose frames fit
            /// entirely within the cut survive.
            #[test]
            fn torn_tail_recovers_longest_valid_prefix(
                n_records in 0usize..24,
                cut_frac in 0.0f64..1.0,
                seed in 0u64..1000,
            ) {
                let path = tmp_path(&format!("prop-torn-{seed}-{n_records}.wal"));
                let j = Journal::create(&path, seed).unwrap();
                let mut frame_lens = Vec::new();
                for i in 0..n_records {
                    let before = std::fs::metadata(&path).unwrap().len();
                    append_input(&j, ReplayInput::Event {
                        event: EngineEvent::EpochDone {
                            job: JobId::new(i as u64),
                            token: seed.wrapping_add(i as u64),
                        },
                        now: SimTime::from_secs(i as f64),
                    });
                    let after = std::fs::metadata(&path).unwrap().len();
                    frame_lens.push(after - before);
                }
                drop(j);
                let full = std::fs::read(&path).unwrap();
                let cut = (cut_frac * full.len() as f64) as usize;
                std::fs::write(&path, &full[..cut]).unwrap();

                // Expected surviving records: frames fully inside the cut.
                let mut expect = 0usize;
                let mut pos = HEADER_LEN as u64;
                for len in &frame_lens {
                    if pos + len <= cut as u64 {
                        expect += 1;
                        pos += len;
                    } else {
                        break;
                    }
                }
                let rec = Journal::recover(&path, seed).unwrap();
                prop_assert_eq!(rec.inputs.len(), expect);
                for (i, input) in rec.inputs.iter().enumerate() {
                    prop_assert_eq!(*input, ReplayInput::Event {
                        event: EngineEvent::EpochDone {
                            job: JobId::new(i as u64),
                            token: seed.wrapping_add(i as u64),
                        },
                        now: SimTime::from_secs(i as f64),
                    });
                }
                // The file is now the valid prefix: recovering again is
                // lossless.
                drop(rec);
                let again = Journal::recover(&path, seed).unwrap();
                prop_assert_eq!(again.inputs.len(), expect);
            }
        }
    }
}
