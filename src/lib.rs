//! HyperDrive: hyperparameter exploration with POP scheduling.
//!
//! This is the umbrella crate of a from-scratch Rust reproduction of
//! *HyperDrive: Exploring Hyperparameters with POP Scheduling* (Rasley, He,
//! Yan, Ruwase, Fonseca — Middleware '17). It re-exports the public API of
//! every workspace crate so applications can depend on a single crate.
//!
//! See the repository README for a quickstart and DESIGN.md for the system
//! inventory.

pub use hyperdrive_core as pop;
pub use hyperdrive_curve as curve;
pub use hyperdrive_framework as framework;
pub use hyperdrive_policies as policies;
pub use hyperdrive_sim as sim;
pub use hyperdrive_types as types;
pub use hyperdrive_workload as workload;

pub use hyperdrive_types::{
    ConfigId, Configuration, DomainKnowledge, Error, ExperimentId, HyperParamSpace, JobId,
    LearningCurve, LearningDomain, MachineId, MetricKind, MetricNormalizer, ParamRange, ParamValue,
    Result, SimTime, SolvedCondition,
};
