//! The `hyperdrive` command-line driver: run hyperparameter explorations
//! and manage traces without writing code.
//!
//! ```text
//! hyperdrive run    --workload cifar10 --policy pop --machines 4 --configs 100
//! hyperdrive run    --workload lunarlander --policy bandit --live --scale 600
//! hyperdrive trace  --workload cifar10 --configs 100 --out traces.csv
//! hyperdrive replay --file traces.csv --workload cifar10 --policy pop --machines 5
//! ```

use std::process::ExitCode;

use hyperdrive::curve::PredictorConfig;
use hyperdrive::framework::{
    install_sigterm_handler, run_live, DefaultPolicy, ExperimentResult, ExperimentSpec,
    ExperimentWorkload, SchedulingPolicy,
};
use hyperdrive::policies::{BanditPolicy, EarlyTermConfig, EarlyTermPolicy, HyperbandPolicy};
use hyperdrive::pop::{PopConfig, PopPolicy};
use hyperdrive::sim::run_sim;
use hyperdrive::workload::{
    CifarWorkload, ImagenetWorkload, LstmWorkload, LunarWorkload, TraceSet, Workload,
};
use hyperdrive::SimTime;

const USAGE: &str = "\
hyperdrive — hyperparameter exploration with POP scheduling

USAGE:
  hyperdrive run    [OPTIONS]       run one exploration experiment
  hyperdrive trace  [OPTIONS]       record a replayable trace set
  hyperdrive replay [OPTIONS]       replay a trace set under a policy

OPTIONS (run / replay):
  --workload <cifar10|lunarlander|lstm|imagenet22k>         [cifar10]
  --policy   <pop|bandit|earlyterm|hyperband|default>       [pop]
  --machines <N>                          cluster slots     [4]
  --configs  <N>                          configurations    [100]
  --seed     <N>                          experiment seed   [42]
  --tmax-hours <H>                        time budget       [24]
  --target   <0..1>                       normalized target [workload default]
  --dynamic-target <INC>                  raise target by INC when reached
  --live                                  threaded executor instead of simulator
  --scale <X>                             live time scale   [600]
  --run-all                               do not stop at the target

OPTIONS (trace):
  --out  <FILE>                           output path       [traces.csv]
OPTIONS (replay):
  --file <FILE>                           trace file to replay
";

struct Args {
    values: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut values = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let key = &raw[i];
            if !key.starts_with("--") {
                return Err(format!("unexpected argument {key}"));
            }
            let flag_only = matches!(key.as_str(), "--live" | "--run-all");
            if flag_only {
                values.push((key.clone(), None));
                i += 1;
            } else {
                let value = raw.get(i + 1).ok_or_else(|| format!("{key} needs a value"))?.clone();
                values.push((key.clone(), Some(value)));
                i += 2;
            }
        }
        Ok(Args { values })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, key: &str) -> bool {
        self.values.iter().any(|(k, _)| k == key)
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("{key}: cannot parse {v:?}")),
        }
    }
}

fn make_workload(name: &str) -> Result<Box<dyn Workload>, String> {
    match name {
        "cifar10" => Ok(Box::new(CifarWorkload::new())),
        "lunarlander" => Ok(Box::new(LunarWorkload::new())),
        "imagenet22k" => Ok(Box::new(ImagenetWorkload::new())),
        "lstm" => Ok(Box::new(LstmWorkload::new())),
        other => Err(format!("unknown workload {other:?} (cifar10|lunarlander|lstm|imagenet22k)")),
    }
}

fn make_policy(name: &str, seed: u64) -> Result<Box<dyn SchedulingPolicy>, String> {
    let fidelity = PredictorConfig::fast();
    match name {
        "pop" => Ok(Box::new(PopPolicy::with_config(PopConfig {
            predictor: fidelity,
            seed,
            ..Default::default()
        }))),
        "bandit" => Ok(Box::new(BanditPolicy::new())),
        "earlyterm" => Ok(Box::new(EarlyTermPolicy::with_config(EarlyTermConfig {
            predictor: fidelity,
            seed,
            ..Default::default()
        }))),
        "hyperband" => Ok(Box::new(HyperbandPolicy::new())),
        "default" => Ok(Box::new(DefaultPolicy::new())),
        other => Err(format!("unknown policy {other:?} (pop|bandit|earlyterm|hyperband|default)")),
    }
}

fn report(result: &ExperimentResult, experiment: &ExperimentWorkload) {
    println!("policy:            {}", result.policy);
    match result.time_to_target {
        Some(t) => {
            println!("time to target:    {t}");
            if let Some(w) = result.winner {
                println!("winning job:       {w} ({})", experiment.jobs[w.raw() as usize].config);
            }
        }
        None => println!("time to target:    not reached"),
    }
    for m in &result.milestones {
        println!("  milestone: target {:.3} reached at {} by {}", m.target, m.time, m.job);
    }
    println!("experiment time:   {}", result.end_time);
    println!("epochs executed:   {}", result.total_epochs);
    println!("terminated early:  {}", result.terminated_early());
    println!("suspensions:       {}", result.suspend_events.len());
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let workload = make_workload(args.get("--workload").unwrap_or("cifar10"))?;
    let seed: u64 = args.parse_num("--seed", 42)?;
    let n_configs: usize = args.parse_num("--configs", 100)?;
    if n_configs == 0 {
        return Err("--configs: need at least one configuration".into());
    }
    let machines: usize = args.parse_num("--machines", 4)?;
    if machines == 0 {
        return Err("--machines: a cluster needs at least one machine".into());
    }
    let tmax: f64 = args.parse_num("--tmax-hours", 24.0)?;

    let mut experiment = ExperimentWorkload::from_workload(workload.as_ref(), n_configs, seed);
    if let Some(t) = args.get("--target") {
        let t: f64 = t.parse().map_err(|_| "--target: not a number".to_string())?;
        experiment = experiment.with_target(t);
    }
    let mut spec = ExperimentSpec::new(machines)
        .with_tmax(SimTime::from_hours(tmax))
        .with_seed(seed)
        .with_stop_on_target(!args.has("--run-all"));
    if let Some(inc) = args.get("--dynamic-target") {
        let inc: f64 = inc.parse().map_err(|_| "--dynamic-target: not a number".to_string())?;
        spec = spec.with_dynamic_target(inc);
    }

    let mut policy = make_policy(args.get("--policy").unwrap_or("pop"), seed)?;
    println!(
        "running {} x{} on {} machines ({})…",
        workload.name(),
        n_configs,
        machines,
        if args.has("--live") { "live executor" } else { "simulator" }
    );
    let result = if args.has("--live") {
        let scale: f64 = args.parse_num("--scale", 600.0)?;
        // SIGTERM requests a graceful stop: the run loop drains the node
        // agents and seals the write-ahead journal (if enabled) so the
        // run can be recovered instead of replayed-and-diverged.
        install_sigterm_handler();
        run_live(policy.as_mut(), &experiment, spec, scale)
    } else {
        run_sim(policy.as_mut(), &experiment, spec)
    };
    report(&result, &experiment);
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let workload = make_workload(args.get("--workload").unwrap_or("cifar10"))?;
    let seed: u64 = args.parse_num("--seed", 42)?;
    let n_configs: usize = args.parse_num("--configs", 100)?;
    let out = args.get("--out").unwrap_or("traces.csv");
    let traces = TraceSet::generate(workload.as_ref(), n_configs, seed);
    traces.write_to_path(out).map_err(|e| e.to_string())?;
    println!("wrote {} traces of {} to {out}", traces.len(), workload.name());
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    let file = args.get("--file").ok_or("replay needs --file")?;
    let traces = TraceSet::read_from_path(file).map_err(|e| e.to_string())?;
    let workload = make_workload(args.get("--workload").unwrap_or(&traces.workload_name))?;
    let seed: u64 = args.parse_num("--seed", 42)?;
    let machines: usize = args.parse_num("--machines", 4)?;
    if machines == 0 {
        return Err("--machines: a cluster needs at least one machine".into());
    }
    let tmax: f64 = args.parse_num("--tmax-hours", 24.0)?;

    let experiment = ExperimentWorkload::from_traces(
        &traces,
        workload.domain_knowledge(),
        workload.eval_boundary(),
        workload.default_target(),
        workload.suspend_model(),
    );
    let spec = ExperimentSpec::new(machines)
        .with_tmax(SimTime::from_hours(tmax))
        .with_seed(seed)
        .with_stop_on_target(!args.has("--run-all"));
    if experiment.is_empty() {
        return Err(format!("{file}: trace file contains no traces"));
    }
    let mut policy = make_policy(args.get("--policy").unwrap_or("pop"), seed)?;
    println!("replaying {} traces from {file}…", experiment.len());
    let result = run_sim(policy.as_mut(), &experiment, spec);
    report(&result, &experiment);
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(&raw[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match command {
        "run" => cmd_run(&args),
        "trace" => cmd_trace(&args),
        "replay" => cmd_replay(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        Args::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_key_value_pairs_and_flags() {
        let args = parse(&["--workload", "lstm", "--machines", "8", "--live"]).unwrap();
        assert_eq!(args.get("--workload"), Some("lstm"));
        assert_eq!(args.parse_num::<usize>("--machines", 1).unwrap(), 8);
        assert!(args.has("--live"));
        assert!(!args.has("--run-all"));
        assert_eq!(args.parse_num::<u64>("--seed", 42).unwrap(), 42, "default applies");
    }

    #[test]
    fn rejects_missing_values_and_stray_args() {
        assert!(parse(&["--machines"]).is_err());
        assert!(parse(&["oops"]).is_err());
    }

    #[test]
    fn rejects_unparsable_numbers() {
        let args = parse(&["--machines", "lots"]).unwrap();
        assert!(args.parse_num::<usize>("--machines", 1).is_err());
    }

    #[test]
    fn workload_and_policy_factories() {
        for w in ["cifar10", "lunarlander", "lstm", "imagenet22k"] {
            assert!(make_workload(w).is_ok(), "{w}");
        }
        assert!(make_workload("mnist").is_err());
        for p in ["pop", "bandit", "earlyterm", "hyperband", "default"] {
            assert!(make_policy(p, 1).is_ok(), "{p}");
        }
        assert!(make_policy("sota", 1).is_err());
    }
}
